package api

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/npn"
	"repro/internal/tt"
)

// randTables builds count random n-variable tables from a fixed seed.
func randTables(n, count int, seed int64) []*tt.TT {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*tt.TT, count)
	for i := range fs {
		fs[i] = tt.Random(n, rng)
	}
	return fs
}

// TestBinaryRequestRoundTrip: encode → decode is the identity, with and
// without the CRC trailer, across arities including the sub-byte ones,
// and the frame is exactly BinaryRequestSize bytes.
func TestBinaryRequestRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		for _, crc := range []bool{false, true} {
			fs := randTables(n, 9, int64(100*n))
			frame := EncodeBinaryRequest(fs, crc)
			if got, want := len(frame), BinaryRequestSize(fs, crc); got != want {
				t.Fatalf("n=%d crc=%v: frame is %d bytes, BinaryRequestSize says %d", n, crc, got, want)
			}
			back, gotCRC, err := DecodeBinaryRequest(frame)
			if err != nil {
				t.Fatalf("n=%d crc=%v: decode: %v", n, crc, err)
			}
			if gotCRC != crc {
				t.Fatalf("n=%d: crc echo %v, want %v", n, gotCRC, crc)
			}
			if len(back) != len(fs) {
				t.Fatalf("n=%d: %d tables back, want %d", n, len(back), len(fs))
			}
			for i := range fs {
				if back[i].NumVars() != n || !back[i].Equal(fs[i]) {
					t.Fatalf("n=%d: table %d does not round-trip", n, i)
				}
			}
		}
	}
}

// TestBinaryRequestRejects: every malformed frame fails whole, with no
// panic — truncations at every prefix length, bad magic/version/flags,
// corrupt CRC, trailing garbage, out-of-range arity, dirty padding bits.
func TestBinaryRequestRejects(t *testing.T) {
	good := EncodeBinaryRequest(randTables(4, 3, 7), false)

	for cut := 0; cut < len(good); cut++ {
		if _, _, err := DecodeBinaryRequest(good[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded", cut, len(good))
		}
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), good...))
		if _, _, err := DecodeBinaryRequest(b); err == nil {
			t.Fatalf("%s: decoded", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad version", func(b []byte) []byte { b[2] = BinaryVersion + 1; return b })
	mutate("unknown flag", func(b []byte) []byte { b[3] |= 0x80; return b })
	mutate("trailing byte", func(b []byte) []byte { return append(b, 0) })
	mutate("arity zero", func(b []byte) []byte { b[5] = 0; return b })
	mutate("arity too large", func(b []byte) []byte { b[5] = tt.MaxVars + 1; return b })
	mutate("count lies high", func(b []byte) []byte { b[4] = 200; return b })

	withCRC := EncodeBinaryRequest(randTables(4, 3, 7), true)
	withCRC[len(withCRC)-1] ^= 0xff
	if _, _, err := DecodeBinaryRequest(withCRC); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt CRC: err %v", err)
	}

	// An n=1 table uses 2 of its byte's 8 bits; the rest must be zero.
	dirty := EncodeBinaryRequest(randTables(1, 1, 7), false)
	dirty[len(dirty)-1] |= 0xf0
	if _, _, err := DecodeBinaryRequest(dirty); err == nil {
		t.Fatal("dirty padding bits decoded")
	}

	if _, _, err := DecodeBinaryRequest(appendBinaryHeader(nil, 0, false)); err == nil {
		t.Fatal("zero-function frame decoded")
	}
}

// witness4 is a non-trivial but valid arity-4 witness.
func witness4() npn.Transform {
	w := npn.Identity(4)
	w.Perm[0], w.Perm[3] = 3, 0
	w.NegMask = 0b0101
	w.OutNeg = true
	return w
}

// TestBinaryClassifyRoundTrip covers all three item shapes — miss, hit
// (witness + representative), and a per-item error — surviving the frame.
func TestBinaryClassifyRoundTrip(t *testing.T) {
	rep := randTables(4, 1, 11)[0]
	res := []Result{
		{Key: 0xdeadbeefcafef00d, Hit: false},
		{Key: 42, Hit: true, Index: 3, Rep: rep, Witness: witness4()},
		{}, // slot carried by errs
	}
	errs := []*Error{nil, nil, Errf(CodeBadHex, "nope").WithRequestID("r-1")}

	for _, crc := range []bool{false, true} {
		items, err := DecodeBinaryClassify(EncodeBinaryClassify(res, errs, crc))
		if err != nil {
			t.Fatalf("crc=%v: %v", crc, err)
		}
		if len(items) != 3 {
			t.Fatalf("%d items", len(items))
		}
		if items[0].Hit || items[0].Err != nil || items[0].Key != res[0].Key {
			t.Fatalf("miss item: %+v", items[0])
		}
		hit := items[1]
		if !hit.Hit || hit.Key != 42 || hit.Index != 3 || !hit.Rep.Equal(rep) || hit.Witness != witness4() {
			t.Fatalf("hit item: %+v", hit)
		}
		if e := items[2].Err; e == nil || e.Code != CodeBadHex || e.RequestID != "r-1" {
			t.Fatalf("error item: %+v", items[2].Err)
		}
	}

	// The RepHex fallback path (backend without a parsed Rep at hand).
	res[1].RepHex, res[1].Rep = rep.Hex(), nil
	items, err := DecodeBinaryClassify(EncodeBinaryClassify(res, errs, false))
	if err != nil || !items[1].Rep.Equal(rep) {
		t.Fatalf("RepHex fallback: %v %+v", err, items[1])
	}
}

// TestBinaryInsertRoundTrip covers created, existing, per-item error and
// the journal-refused (not_durable) shape.
func TestBinaryInsertRoundTrip(t *testing.T) {
	out := []InsertOutcome{
		{Key: 1, Index: 5, New: true},
		{Key: 2, Index: 0, New: false},
		{Key: 3, Index: -1},
		{},
	}
	errs := []*Error{nil, nil, nil, Errf(CodeArityOutOfRange, "bad arity")}
	items, err := DecodeBinaryInsert(EncodeBinaryInsert(out, errs, true))
	if err != nil {
		t.Fatal(err)
	}
	if !items[0].New || items[0].Index != 5 || items[0].Key != 1 {
		t.Fatalf("created: %+v", items[0])
	}
	if items[1].New || items[1].Index != 0 {
		t.Fatalf("existing: %+v", items[1])
	}
	if e := items[2].Err; e == nil || e.Code != CodeNotDurable {
		t.Fatalf("refused: %+v", items[2])
	}
	if e := items[3].Err; e == nil || e.Code != CodeArityOutOfRange {
		t.Fatalf("error: %+v", items[3])
	}
}

// TestBinaryResponseRejects: response decoders refuse truncation and
// unknown status bytes.
func TestBinaryResponseRejects(t *testing.T) {
	frame := EncodeBinaryClassify([]Result{{Key: 9}}, []*Error{nil}, false)
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeBinaryClassify(frame[:cut]); err == nil {
			t.Fatalf("classify truncation at %d decoded", cut)
		}
	}
	bad := append([]byte(nil), frame...)
	bad[5] = 99
	if _, err := DecodeBinaryClassify(bad); err == nil {
		t.Fatal("unknown classify status decoded")
	}

	iframe := EncodeBinaryInsert([]InsertOutcome{{Key: 9, Index: 1}}, []*Error{nil}, false)
	for cut := 0; cut < len(iframe); cut++ {
		if _, err := DecodeBinaryInsert(iframe[:cut]); err == nil {
			t.Fatalf("insert truncation at %d decoded", cut)
		}
	}
	ibad := append([]byte(nil), iframe...)
	ibad[5] = binStatusMiss // miss is not a valid insert status
	if _, err := DecodeBinaryInsert(ibad); err == nil {
		t.Fatal("unknown insert status decoded")
	}
}

// binPost issues a POST carrying explicit Content-Type and Accept.
func binPost(h http.HandlerFunc, path, contentType, accept string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	h(rec, req)
	return rec
}

// TestBinaryNegotiationMatrix drives HandleClassify through all three
// mixed transport corners: binary request with a JSON response, JSON
// request with a binary response, and binary both ways with the request's
// CRC choice mirrored onto the response.
func TestBinaryNegotiationMatrix(t *testing.T) {
	h := HandleClassify(&fakeBackend{}, 1<<20)
	fs := randTables(4, 2, 21)

	// Binary in, JSON out: items echo the canonical hex.
	rec := binPost(h, "/v2/classify", BinaryContentType, "", EncodeBinaryRequest(fs, false))
	if rec.Code != http.StatusOK {
		t.Fatalf("binary->json: %d %s", rec.Code, rec.Body)
	}
	var cresp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cresp); err != nil {
		t.Fatal(err)
	}
	if len(cresp.Results) != 2 || cresp.Results[0].Function != fs[0].Hex() || cresp.Results[0].Class != KeyHex(42) {
		t.Fatalf("binary->json items: %+v", cresp.Results)
	}

	// JSON in, binary out.
	jsonBody, _ := json.Marshal(BatchRequest{Functions: []string{fs[0].Hex(), fs[1].Hex()}})
	rec = binPost(h, "/v2/classify", "application/json", BinaryContentType, jsonBody)
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != BinaryContentType {
		t.Fatalf("json->binary: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	items, err := DecodeBinaryClassify(rec.Body.Bytes())
	if err != nil || len(items) != 2 || items[0].Key != 42 || items[0].Hit {
		t.Fatalf("json->binary items: %v %+v", err, items)
	}

	// Binary both ways, CRC mirrored from the request frame.
	rec = binPost(h, "/v2/classify", BinaryContentType, BinaryContentType, EncodeBinaryRequest(fs, true))
	if rec.Code != http.StatusOK {
		t.Fatalf("binary->binary: %d %s", rec.Code, rec.Body)
	}
	if rec.Body.Bytes()[3]&binFlagCRC == 0 {
		t.Fatal("response frame does not mirror the request CRC flag")
	}
	if _, err := DecodeBinaryClassify(rec.Body.Bytes()); err != nil {
		t.Fatalf("binary->binary decode: %v", err)
	}

	// Insert side: binary both ways through the shared negotiation path.
	ih := HandleInsert(&fakeBackend{}, 1<<20)
	rec = binPost(ih, "/v2/insert", BinaryContentType, BinaryContentType, EncodeBinaryRequest(fs, false))
	if rec.Code != http.StatusOK {
		t.Fatalf("insert binary->binary: %d %s", rec.Code, rec.Body)
	}
	ins, err := DecodeBinaryInsert(rec.Body.Bytes())
	if err != nil || len(ins) != 2 || !ins[0].New || ins[0].Key != 7 {
		t.Fatalf("insert items: %v %+v", err, ins)
	}
}

// TestBinaryNegotiationErrors: a malformed frame is a whole-request JSON
// bad_request envelope even when the client asked for binary back, and an
// unserved arity inside a valid frame is a per-item error on both
// response transports.
func TestBinaryNegotiationErrors(t *testing.T) {
	h := HandleClassify(&fakeBackend{}, 1<<20)

	rec := binPost(h, "/v2/classify", BinaryContentType, BinaryContentType, []byte("XX garbage"))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad frame: %d", rec.Code)
	}
	if e := decodeEnvelope(t, rec.Body.Bytes()); e.Code != CodeBadRequest {
		t.Fatalf("bad frame code: %s", e.Code)
	}

	// fakeBackend serves arity 4 only; an arity-3 table fails its item.
	mixed := []*tt.TT{randTables(4, 1, 3)[0], randTables(3, 1, 3)[0]}
	rec = binPost(h, "/v2/classify", BinaryContentType, BinaryContentType, EncodeBinaryRequest(mixed, false))
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed arities: %d %s", rec.Code, rec.Body)
	}
	items, err := DecodeBinaryClassify(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil || items[1].Err == nil || items[1].Err.Code != CodeArityOutOfRange {
		t.Fatalf("per-item arity error: %+v", items)
	}

	rec = binPost(h, "/v2/classify", BinaryContentType, "", EncodeBinaryRequest(mixed, false))
	var cresp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cresp); err != nil {
		t.Fatal(err)
	}
	if cresp.Errors != 1 || cresp.Results[1].Error == nil || cresp.Results[1].Error.Code != CodeArityOutOfRange {
		t.Fatalf("per-item arity error over JSON: %+v", cresp)
	}
}

// TestBinaryCodecAllocs gates the codec hot paths: one allocation to
// encode a frame (its exact-size buffer), a small fixed overhead plus the
// tables themselves to decode.
func TestBinaryCodecAllocs(t *testing.T) {
	fs := randTables(6, 16, 31)
	frame := EncodeBinaryRequest(fs, true)
	res := make([]Result, len(fs))
	for i := range res {
		res[i] = Result{Key: uint64(i) * 0x9e3779b97f4a7c15, Hit: false}
	}
	errs := make([]*Error, len(fs))
	respFrame := EncodeBinaryClassify(res, errs, false)

	if n := testing.AllocsPerRun(200, func() { EncodeBinaryRequest(fs, true) }); n > 1 {
		t.Errorf("EncodeBinaryRequest: %.1f allocs/op, want <= 1", n)
	}
	if n := testing.AllocsPerRun(200, func() { EncodeBinaryClassify(res, errs, false) }); n > 1 {
		t.Errorf("EncodeBinaryClassify: %.1f allocs/op, want <= 1", n)
	}
	decBound := float64(3*len(fs) + 2)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeBinaryRequest(frame); err != nil {
			t.Fatal(err)
		}
	}); n > decBound {
		t.Errorf("DecodeBinaryRequest: %.1f allocs/op, want <= %.0f", n, decBound)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := DecodeBinaryClassify(respFrame); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Errorf("DecodeBinaryClassify (all misses): %.1f allocs/op, want <= 2", n)
	}
}

// FuzzBinaryDecoders feeds arbitrary bytes to all three frame decoders:
// none may panic, and any request frame that decodes must re-encode to
// the identical bytes (the format has one canonical encoding).
func FuzzBinaryDecoders(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("NB"))
	f.Add(EncodeBinaryRequest(randTables(4, 3, 41), false))
	f.Add(EncodeBinaryRequest(randTables(1, 2, 43), true))
	f.Add(EncodeBinaryClassify(
		[]Result{{Key: 42, Hit: true, Index: 1, Rep: randTables(4, 1, 45)[0], Witness: witness4()}},
		[]*Error{nil}, true))
	f.Add(EncodeBinaryInsert([]InsertOutcome{{Key: 3, Index: -1}}, []*Error{nil}, false))
	f.Fuzz(func(t *testing.T, data []byte) {
		if fs, crc, err := DecodeBinaryRequest(data); err == nil {
			again := EncodeBinaryRequest(fs, crc)
			if !bytes.Equal(again, data) {
				t.Fatalf("request re-encode differs:\n in: %x\nout: %x", data, again)
			}
		}
		DecodeBinaryClassify(data)
		DecodeBinaryInsert(data)
	})
}
