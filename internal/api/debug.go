package api

import (
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// HandleTraces serves GET /v2/debug/traces: the flight recorder's
// retained traces, newest first. Query filters: ?min_ms=N keeps traces
// at least N milliseconds long, ?route=PATTERN keeps one route (the
// exact mux pattern, e.g. /v2/classify). Filter parsing is lenient —
// a malformed min_ms reads as no filter — because this is a debug
// surface, not a contract.
func HandleTraces(t *obs.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		minMs, _ := strconv.ParseFloat(q.Get("min_ms"), 64)
		WriteJSON(w, http.StatusOK, t.List(minMs, q.Get("route")))
	}
}

// HandleTrace serves GET /v2/debug/traces/{id}: one retained trace's
// full span tree, addressed by the request's X-Request-Id.
func HandleTrace(t *obs.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		d, ok := t.Get(id)
		if !ok {
			WriteError(w, Errf(CodeNotFound, "no retained trace %q (evicted, sampled out, or never seen)", id))
			return
		}
		WriteJSON(w, http.StatusOK, d)
	}
}
