package api

import (
	"encoding/json"
	"mime"
	"net/http"
	"sort"
	"strings"
)

// Version is the current API version identifier, the prefix of every new
// endpoint.
const Version = "v2"

// Route describes one mounted endpoint, as published by GET /v2/spec.
type Route struct {
	Method  string `json:"method"`
	Pattern string `json:"pattern"`
	Desc    string `json:"desc,omitempty"`
	// Deprecated marks compatibility shims (the /v1 surface).
	Deprecated bool `json:"deprecated,omitempty"`
}

// Spec is the body of GET /v2/spec: the server's self-description — its
// role, every mounted route, and the error-code taxonomy. CI asserts the
// route list covers the live mux; it does by construction, because the
// Router derives both from the same registrations.
type Spec struct {
	Service    string   `json:"service"`
	APIVersion string   `json:"api_version"`
	Role       string   `json:"role"`
	Routes     []Route  `json:"routes"`
	ErrorCodes []string `json:"error_codes"`
	// Docs points at the normative wire specification for this surface —
	// the byte-level contract (JSON envelopes, NDJSON streaming, the
	// binary frame format) that the route list only names.
	Docs string `json:"docs,omitempty"`
	// BinaryContentType is the media type of the length-framed binary
	// transport accepted and produced by /v2/classify and /v2/insert.
	BinaryContentType string `json:"binary_content_type,omitempty"`
}

// Router is the shared HTTP mount point of every serving stack: routes
// are registered per (method, pattern), unmatched paths answer the JSON
// not_found envelope instead of Go's plain-text 404, a matched pattern
// asked with the wrong method answers the JSON method_not_allowed
// envelope with an Allow header, and the registrations double as the
// GET /v2/spec self-description.
type Router struct {
	role    string
	mux     *http.ServeMux
	methods map[string]map[string]http.HandlerFunc // pattern -> method -> handler
	routes  []Route
	mw      []Middleware
}

// Middleware wraps one route's dispatch. It receives the registered
// pattern (not the concrete URL — "/v2/classify", never a per-request
// path, so metric label cardinality stays bounded) and the next handler.
// The signature is a plain func type so an implementation (obs's HTTP
// metrics) never has to import this package.
type Middleware func(route string, next http.HandlerFunc) http.HandlerFunc

// UnmatchedRoute is the route label middleware sees for requests no
// pattern matched (the JSON 404 fallback) — one bounded label instead of
// an attacker-controlled URL space.
const UnmatchedRoute = "unmatched"

// NewRouter returns an empty router for a stack with the given role
// ("single", "federated", "follower").
func NewRouter(role string) *Router {
	rt := &Router{
		role:    role,
		mux:     http.NewServeMux(),
		methods: make(map[string]map[string]http.HandlerFunc),
	}
	rt.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		rt.wrap(UnmatchedRoute, func(w http.ResponseWriter, r *http.Request) {
			WriteError(w, Errf(CodeNotFound, "no route for %s", r.URL.Path))
		})(w, r)
	})
	return rt
}

// Use appends a middleware applied to every route — registered before or
// after the Use call — including the 404 fallback and the 405 path.
// Middleware run in Use order, outermost first. Use must be called
// before the router starts serving; it is not safe concurrently with
// ServeHTTP.
func (rt *Router) Use(mw Middleware) { rt.mw = append(rt.mw, mw) }

// wrap applies the middleware chain to a handler under a route label.
func (rt *Router) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	for i := len(rt.mw) - 1; i >= 0; i-- {
		h = rt.mw[i](route, h)
	}
	return h
}

// Handle mounts h at method+pattern (a net/http ServeMux pattern, may
// hold {wildcards}) and records it in the spec. Registering two handlers
// for the same method and pattern panics, like ServeMux.
func (rt *Router) Handle(method, pattern, desc string, h http.HandlerFunc) {
	rt.handle(method, pattern, desc, false, h)
}

// HandleDeprecated mounts a compatibility shim: served identically,
// marked deprecated in the spec.
func (rt *Router) HandleDeprecated(method, pattern, desc string, h http.HandlerFunc) {
	rt.handle(method, pattern, desc, true, h)
}

func (rt *Router) handle(method, pattern, desc string, deprecated bool, h http.HandlerFunc) {
	byMethod, ok := rt.methods[pattern]
	if !ok {
		byMethod = make(map[string]http.HandlerFunc)
		rt.methods[pattern] = byMethod
		rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			// Wrapped per request so Use works regardless of registration
			// order; the chain is short and the closures are cheap next to
			// serving the request.
			rt.wrap(pattern, func(w http.ResponseWriter, r *http.Request) {
				rt.dispatch(byMethod, w, r)
			})(w, r)
		})
	}
	if _, dup := byMethod[method]; dup {
		panic("api: duplicate route " + method + " " + pattern)
	}
	byMethod[method] = h
	rt.routes = append(rt.routes, Route{Method: method, Pattern: pattern, Desc: desc, Deprecated: deprecated})
}

// dispatch picks the method's handler, or answers method_not_allowed with
// the Allow header listing what the pattern does serve.
func (rt *Router) dispatch(byMethod map[string]http.HandlerFunc, w http.ResponseWriter, r *http.Request) {
	if h, ok := byMethod[r.Method]; ok {
		h(w, r)
		return
	}
	allow := make([]string, 0, len(byMethod))
	for m := range byMethod {
		allow = append(allow, m)
	}
	sort.Strings(allow)
	w.Header().Set("Allow", strings.Join(allow, ", "))
	WriteError(w, Errf(CodeMethodNotAllowed, "method %s not allowed", r.Method).
		WithDetail("allowed: %s", strings.Join(allow, ", ")))
}

// MountSpec registers GET /v2/spec, serving the router's own route table.
// Call it after every other registration... or before: the spec is built
// per request, so it always reflects the final table.
func (rt *Router) MountSpec() {
	rt.Handle("GET", "/v2/spec", "API self-description: routes and error codes",
		func(w http.ResponseWriter, r *http.Request) {
			WriteJSON(w, http.StatusOK, rt.Spec())
		})
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Routes returns the registered routes in registration order.
func (rt *Router) Routes() []Route {
	out := make([]Route, len(rt.routes))
	copy(out, rt.routes)
	return out
}

// Spec returns the self-description served at GET /v2/spec.
func (rt *Router) Spec() Spec {
	codes := Codes()
	cs := make([]string, len(codes))
	for i, c := range codes {
		cs[i] = string(c)
	}
	return Spec{
		Service: "npnserve", APIVersion: Version, Role: rt.role,
		Routes: rt.Routes(), ErrorCodes: cs,
		Docs:              "docs/WIRE.md",
		BinaryContentType: BinaryContentType,
	}
}

// WriteJSON emits a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are sent; nothing recoverable remains.
		return
	}
}

// WriteError emits the {"error": {...}} envelope at the code's status.
func WriteError(w http.ResponseWriter, e *Error) {
	WriteJSON(w, e.HTTPStatus(), ErrorEnvelope{Error: e})
}

// CheckContentType gates a request on its Content-Type: a missing header
// always passes (curl-friendliness), a present one must have one of the
// accepted media types. On failure it writes the unsupported_media_type
// envelope and returns false.
func CheckContentType(w http.ResponseWriter, r *http.Request, accepted ...string) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err == nil {
		for _, a := range accepted {
			if mt == a {
				return true
			}
		}
	}
	WriteError(w, Errf(CodeUnsupportedMediaType, "content type %q not accepted", ct).
		WithDetail("accepted: %s", strings.Join(accepted, ", ")))
	return false
}
