#!/usr/bin/env bash
# overload-smoke.sh — drive a real npnserve process past its API-key
# quota and assert the hardened-edge contract end to end: anonymous
# traffic answers 401 unauthorized, in-quota keyed requests are served,
# the overload answers 429 with an integer Retry-After and the stable
# rate_limited code, the refusals are visible as counters on the live
# /metrics exposition, and /healthz keeps answering 200 through all of
# it (probes must survive exactly the overload the guard manages).
#
# Usage: scripts/overload-smoke.sh [path-to-npnserve-binary]
# Requires: curl, jq.
set -euo pipefail

BIN=${1:-/tmp/npnserve}
ADDR=127.0.0.1:18300
BASE=http://$ADDR
HERE=$(cd "$(dirname "$0")" && pwd)

if [ ! -x "$BIN" ]; then
  echo "overload-smoke: building npnserve to $BIN"
  go build -o "$BIN" ./cmd/npnserve
fi

# A deliberately tiny quota (2 rps, burst 2) so a handful of requests is
# already "overload".
"$BIN" -addr "$ADDR" -arities 4-6 -key smoke:sekrit:2:2 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT
"$HERE"/wait-healthz.sh "$BASE"

FNS='{"functions":["1ee1"]}'
AUTH='Authorization: Bearer sekrit'
CT='Content-Type: application/json'

# Anonymous traffic: a stable machine-readable 401.
CODE=$(curl -s -o /tmp/overload-anon.json -w '%{http_code}' -X POST -H "$CT" "$BASE/v2/classify" -d "$FNS")
[ "$CODE" = "401" ] || { echo "anonymous classify answered $CODE, want 401"; exit 1; }
jq -e '.error.code == "unauthorized"' /tmp/overload-anon.json >/dev/null

# A wrong key is refused too — never downgraded to anonymous.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H "$CT" -H 'Authorization: Bearer wrong' "$BASE/v2/classify" -d "$FNS")
[ "$CODE" = "401" ] || { echo "wrong key answered $CODE, want 401"; exit 1; }

# In quota: the key's first request is served.
curl -sf -X POST -H "$CT" -H "$AUTH" "$BASE/v2/classify" -d "$FNS" | jq -e '.results | length == 1' >/dev/null

# Loadgen past the quota: 20 back-to-back requests against burst 2 must
# produce both served responses and 429 refusals.
SERVED=0
LIMITED=0
for i in $(seq 1 20); do
  CODE=$(curl -s -o /tmp/overload-last.json -D /tmp/overload-headers.txt -w '%{http_code}' \
    -X POST -H "$CT" -H "$AUTH" "$BASE/v2/classify" -d "$FNS")
  case "$CODE" in
    200) SERVED=$((SERVED + 1)) ;;
    429) LIMITED=$((LIMITED + 1)) ;;
    *) echo "unexpected status $CODE under overload"; exit 1 ;;
  esac
done
[ "$LIMITED" -gt 0 ] || { echo "no request was rate limited past burst 2"; exit 1; }
echo "overload-smoke: $SERVED served, $LIMITED limited"

# The last refusal carries the wire contract: integer Retry-After >= 1
# and the stable rate_limited code in the error envelope.
jq -e '.error.code == "rate_limited"' /tmp/overload-last.json >/dev/null
RETRY=$(tr -d '\r' < /tmp/overload-headers.txt | awk -F': ' 'tolower($1) == "retry-after" {print $2}')
[ -n "$RETRY" ] && [ "$RETRY" -ge 1 ] || { echo "429 Retry-After is '$RETRY', want integer >= 1"; exit 1; }

# /healthz answers 200 from the same client mid-overload: the probe
# route is exempt from the guard.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/healthz")
[ "$CODE" = "200" ] || { echo "/healthz answered $CODE during overload"; exit 1; }

# The refusals are observable on the live exposition, which is also
# exempt and needs no key.
curl -sf "$BASE/metrics" > /tmp/overload-metrics.txt
awk '/^npn_http_rate_limited_total{/ { if ($2 > 0) found = 1 } END { exit !found }' /tmp/overload-metrics.txt \
  || { echo "npn_http_rate_limited_total not > 0 on /metrics"; exit 1; }
awk '/^npn_http_unauthorized_total{/ { if ($2 > 0) found = 1 } END { exit !found }' /tmp/overload-metrics.txt \
  || { echo "npn_http_unauthorized_total not > 0 on /metrics"; exit 1; }

kill "$PID"
echo "overload-smoke: OK"
