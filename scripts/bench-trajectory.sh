#!/usr/bin/env bash
# bench-trajectory.sh — measure the serving-stack performance trajectory.
#
# Runs the tier-1 serving benchmarks (store lookup, WAL replay, store
# throughput), boots a real durable npnserve with metrics on, drives a
# short classify loadgen against it, and folds both into one
# schema-stable JSON document (see cmd/benchtraj) whose p50/p99 come from
# the server's own latency histogram.
#
# Usage:
#   scripts/bench-trajectory.sh [out.json]
#
# Environment:
#   BENCHTIME  go test -benchtime (default 1x: compile-and-run-once in CI;
#              use e.g. 2s for a real measurement)
#   BASELINE   when set, diff out.json against this committed baseline and
#              fail on a real p99 regression (benchtraj check)
#   ADDR       loadgen server address (default 127.0.0.1:18099)
#   REQUESTS   loadgen batches (default 200)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_serve.new.json}
BENCHTIME=${BENCHTIME:-1x}
ADDR=${ADDR:-127.0.0.1:18099}
REQUESTS=${REQUESTS:-200}

WORK=$(mktemp -d)
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/npnserve" ./cmd/npnserve
go build -o "$WORK/benchtraj" ./cmd/benchtraj

echo "== benchmarks (benchtime=$BENCHTIME)"
go test -run '^$' -bench 'LookupCachedVsUncached|TransportClassify|WALReplay|StoreThroughput' \
  -benchtime "$BENCHTIME" -benchmem . | tee "$WORK/bench.txt"

echo "== loadgen against a live durable server on $ADDR"
"$WORK/npnserve" -addr "$ADDR" -data "$WORK/data" -fsync-interval 5ms &
PID=$!
scripts/wait-healthz.sh "http://$ADDR"
"$WORK/benchtraj" emit -bench "$WORK/bench.txt" -url "http://$ADDR" \
  -benchtime "$BENCHTIME" -requests "$REQUESTS" > "$OUT"
kill "$PID" && wait "$PID" 2>/dev/null || true
PID=""

echo "== wrote $OUT"
if [ -n "${BASELINE:-}" ]; then
  echo "== diffing against $BASELINE"
  "$WORK/benchtraj" check -baseline "$BASELINE" -current "$OUT"
fi
