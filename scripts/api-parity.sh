#!/usr/bin/env bash
# api-parity.sh — drive the same insert/classify/stats flow through the
# deprecated /v1 surface and the /v2 surface of a real npnserve process
# and diff the semantic results, then assert the /v2 contract points the
# two surfaces intentionally diverge on (per-item errors, JSON 404/405,
# content-type gate) and smoke the /v2/map and /v2/spec endpoints.
#
# Usage: scripts/api-parity.sh [path-to-npnserve-binary]
# Requires: curl, jq.
set -euo pipefail

BIN=${1:-/tmp/npnserve}
ADDR=127.0.0.1:18200
BASE=http://$ADDR
HERE=$(cd "$(dirname "$0")" && pwd)

if [ ! -x "$BIN" ]; then
  echo "api-parity: building npnserve to $BIN"
  go build -o "$BIN" ./cmd/npnserve
fi

"$BIN" -addr "$ADDR" -arities 2-10 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT
"$HERE"/wait-healthz.sh "$BASE"

FNS='{"functions":["1ee1","cafef00dcafef00d","e8","96969696"]}'
# Output-complemented NPN variants of the inserted functions.
VARS='{"functions":["e11e","35010ff235010ff2","17","69696969"]}'

# --- The same flow through both surfaces must agree semantically. -----
# v1 and v2 are driven against the same server sequentially; the second
# insert of the same functions must be new:false everywhere, so we
# normalize on (function, class, index) for inserts and the full result
# row for classifies.
norm_results='.results | map({function, class, index})'
V1_INS=$(curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v1/insert" -d "$FNS" | jq "$norm_results")
V2_INS=$(curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v2/insert" -d "$FNS" | jq "$norm_results")
diff <(echo "$V1_INS") <(echo "$V2_INS") || { echo "api-parity: v1/v2 insert results diverge"; exit 1; }

norm_cls='.results | map({function, hit, class, index, rep, witness})'
V1_CLS=$(curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v1/classify" -d "$VARS" | jq "$norm_cls")
V2_CLS=$(curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v2/classify" -d "$VARS" | jq "$norm_cls")
diff <(echo "$V1_CLS") <(echo "$V2_CLS") || { echo "api-parity: v1/v2 classify results diverge"; exit 1; }
echo "$V2_CLS" | jq -e 'all(.hit)' >/dev/null || { echo "api-parity: inserted classes did not hit"; exit 1; }

V1_ST=$(curl -sf "$BASE/v1/stats" | jq '.totals | {classes, inserts, lookups, hits}')
V2_ST=$(curl -sf "$BASE/v2/stats" | jq '.totals | {classes, inserts, lookups, hits}')
diff <(echo "$V1_ST") <(echo "$V2_ST") || { echo "api-parity: v1/v2 stats diverge"; exit 1; }

# --- Intentional divergence: the per-item error contract. -------------
BAD='{"functions":["1ee1","zzzz"]}'
V1_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' "$BASE/v1/classify" -d "$BAD")
[ "$V1_CODE" = "400" ] || { echo "api-parity: v1 whole-batch error returned $V1_CODE, want 400"; exit 1; }
V2_BAD=$(curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v2/classify" -d "$BAD")
echo "$V2_BAD" | jq -e '.errors == 1 and .results[0].hit and .results[1].error.code == "bad_hex"' >/dev/null \
  || { echo "api-parity: v2 per-item error contract broken: $V2_BAD"; exit 1; }

# --- JSON fallbacks and the content-type gate. ------------------------
curl -s "$BASE/no/such/route" | jq -e '.error.code == "not_found"' >/dev/null \
  || { echo "api-parity: 404 fallback is not the JSON envelope"; exit 1; }
ALLOW=$(curl -s -o /dev/null -D - "$BASE/v2/classify" | tr -d '\r' | awk -F': ' 'tolower($1)=="allow"{print $2}')
[ "$ALLOW" = "POST" ] || { echo "api-parity: 405 Allow header is '$ALLOW', want POST"; exit 1; }
UMT=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: text/csv' "$BASE/v2/classify" -d "$FNS")
[ "$UMT" = "415" ] || { echo "api-parity: wrong content type returned $UMT, want 415"; exit 1; }

# --- NDJSON streaming answers one line per input, in order. -----------
STREAM=$(printf '8bb8\nzzzz\nf00dcafef00dcafe\n' | \
  curl -sf -X POST -H 'Content-Type: application/x-ndjson' "$BASE/v2/classify/stream" --data-binary @-)
[ "$(echo "$STREAM" | wc -l)" = "3" ] || { echo "api-parity: stream line count: $STREAM"; exit 1; }
echo "$STREAM" | sed -n 2p | jq -e '.error.code == "bad_hex"' >/dev/null \
  || { echo "api-parity: stream per-item error missing: $STREAM"; exit 1; }

# --- /v2/map: a real circuit, verified, census included, store warmed. -
AAG=$(mktemp)
# a∧b and a⊕b over two inputs, in reencoded ASCII AIGER.
cat > "$AAG" <<'EOF'
aag 5 2 0 2 3
2
4
6
10
6 2 4
8 3 5
10 7 9
EOF
MAP=$(curl -sf -X POST -H 'Content-Type: text/plain' --data-binary @"$AAG" "$BASE/v2/map?k=2&insert=true")
rm -f "$AAG"
echo "$MAP" | jq -e '.verified and .area > 0 and (.classes | length) > 0 and .inserted.classes_created > 0' >/dev/null \
  || { echo "api-parity: /v2/map smoke failed: $MAP"; exit 1; }
# The discovered LUT classes warmed the classifier: its functions hit now.
WARMQ=$(echo "$MAP" | jq '{functions: ([.luts[].function] | unique)}')
curl -sf -X POST -H 'Content-Type: application/json' "$BASE/v2/classify" -d "$WARMQ" | \
  jq -e '.errors == 0 and all(.results[]; .hit)' >/dev/null \
  || { echo "api-parity: mapped LUT classes did not warm the classifier"; exit 1; }

# --- /v2/spec self-describes every headline route. --------------------
SPEC=$(curl -sf "$BASE/v2/spec")
for route in /v2/classify /v2/insert /v2/classify/stream /v2/insert/stream /v2/map /v2/compact /v2/stats /v2/spec /v1/classify /healthz; do
  echo "$SPEC" | jq -e --arg p "$route" '.routes | map(.pattern) | index($p) != null' >/dev/null \
    || { echo "api-parity: spec is missing $route"; exit 1; }
done
echo "$SPEC" | jq -e '.error_codes | index("bad_hex") != null and index("unsupported_media_type") != null' >/dev/null \
  || { echo "api-parity: spec error codes incomplete"; exit 1; }
# Every route the spec lists must actually be mounted: probing it with
# its own method must not hit the not_found/method_not_allowed fallback.
while read -r method pattern; do
  path=$(echo "$pattern" | sed 's/{arity}/5/; s/{seq}/1/')
  code=$(curl -s -o /dev/null -w '%{http_code}' -X "$method" -H 'Content-Type: application/json' "$BASE$path")
  if [ "$code" = "404" ] || [ "$code" = "405" ]; then
    echo "api-parity: spec lists $method $pattern but the mux answered $code"; exit 1
  fi
done < <(echo "$SPEC" | jq -r '.routes[] | "\(.method) \(.pattern)"')

echo "api-parity: OK (v1/v2 agree; per-item errors, fallbacks, streaming, map and spec verified)"
