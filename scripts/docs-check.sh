#!/usr/bin/env bash
# docs-check.sh — keep the documentation honest.
#
# Three checks over README.md plus everything in docs/:
#
#   1. Links: every relative markdown link target must exist on disk
#      (anchors are stripped; http(s) links are not fetched).
#   2. Flag drift: every flag registered in cmd/npnserve/main.go must be
#      mentioned in docs/OPERATIONS.md, so adding a server flag without
#      documenting it fails CI.
#   3. Metric drift: the docs/OPERATIONS.md metric-family table is diffed
#      against the families the code actually registers, both ways. This
#      is delegated to the metricsdrift analyzer in cmd/npnlint so the
#      docs checker and the linter share one source of truth.
#
# Usage: scripts/docs-check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== markdown links"
docs=(README.md docs/*.md)
for doc in "${docs[@]}"; do
  dir=$(dirname "$doc")
  # inline links: [text](target) — skip absolute URLs and pure anchors
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN  $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

echo "== npnserve flags vs docs/OPERATIONS.md"
flags=$(grep -oE 'flag\.[A-Za-z0-9]+Var\(&[^,]+, "[a-z-]+"' cmd/npnserve/main.go \
  | sed -E 's/.*"([a-z-]+)"$/\1/' | sort -u)
[ -n "$flags" ] || { echo "no flags parsed from cmd/npnserve/main.go"; exit 1; }
for f in $flags; do
  if ! grep -q -- "-$f" docs/OPERATIONS.md; then
    echo "UNDOCUMENTED  -$f (cmd/npnserve flag missing from docs/OPERATIONS.md)"
    fail=1
  fi
done

echo "== metric families vs docs/OPERATIONS.md (npnlint metricsdrift)"
if command -v go >/dev/null 2>&1; then
  if ! go run ./cmd/npnlint -only metricsdrift ./...; then
    fail=1
  fi
else
  echo "SKIPPED  go toolchain not on PATH; metric-family drift not checked"
fi

if [ "$fail" -ne 0 ]; then
  echo "docs-check: FAILED"
  exit 1
fi
echo "docs-check: ok ($(echo "$flags" | wc -l) flags, ${#docs[@]} documents)"
