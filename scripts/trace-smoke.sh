#!/usr/bin/env bash
# trace-smoke.sh — drive a real primary/follower pair with -trace on and
# assert the flight-recorder contract end to end: a slow follower-proxied
# insert is tail-retained on both processes under one X-Request-Id, the
# follower's span tree crosses the proxy hop (replica.primary_hop), the
# primary's tree reaches the WAL fsync and is rooted under the
# follower's hop span (X-Trace-Parent), the listing filters work, an
# error request is retained even at -trace-sample 0, and the recorder's
# health counters appear on /metrics.
#
# Usage: scripts/trace-smoke.sh [path-to-npnserve-binary]
# Requires: curl, jq.
set -euo pipefail

BIN=${1:-/tmp/npnserve}
PADDR=127.0.0.1:18400
FADDR=127.0.0.1:18401
PBASE=http://$PADDR
FBASE=http://$FADDR
HERE=$(cd "$(dirname "$0")" && pwd)

if [ ! -x "$BIN" ]; then
  echo "trace-smoke: building npnserve to $BIN"
  go build -o "$BIN" ./cmd/npnserve
fi

DATA=$(mktemp -d)

# Primary: durable, every trace retained (sample 1) so the proxied
# insert's server-side tree is guaranteed to be inspectable.
"$BIN" -addr "$PADDR" -arities 4-10 -data "$DATA" -fsync-interval 0 \
  -trace -trace-sample 1 &
PRIMARY=$!
# Follower: sample 0 — nothing is retained unless the tail criteria
# (slow past 1ms, or an error status) fire, which is exactly what this
# smoke exercises.
"$BIN" -addr "$FADDR" -arities 4-10 -follow "$PBASE" -follow-mode proxy \
  -follow-interval 100ms -trace -trace-sample 0 -slow-request 1ms &
FOLLOWER=$!
trap 'kill "$PRIMARY" "$FOLLOWER" 2>/dev/null || true' EXIT
"$HERE"/wait-healthz.sh "$PBASE"
"$HERE"/wait-healthz.sh "$FBASE"

# A batch of fresh n=10 classes: certifying these (plus one fsync per
# append) keeps the proxied request comfortably past the 1ms slow
# threshold — the artificial delay that makes the tail sampler keep it.
FNS=$(for i in $(seq 1 60); do openssl rand -hex 128; done | jq -R . | jq -cs '{functions:.}')
CT='Content-Type: application/json'
RID='X-Request-Id: trace-smoke-1'

curl -sf -X POST -H "$CT" -H "$RID" "$FBASE/v2/insert" -d "$FNS" | jq -e '.errors == 0' >/dev/null

# The follower retained the slow request under the caller's request ID...
jq_names='[.root | recurse(.children[]?) | .name]'
curl -sf "$FBASE/v2/debug/traces" | jq -e '.traces[] | select(.id == "trace-smoke-1")' >/dev/null \
  || { echo "follower flight recorder has no trace-smoke-1"; exit 1; }
curl -sf "$FBASE/v2/debug/traces/trace-smoke-1" > /tmp/trace-follower.json
jq -e '.reason == "slow"' /tmp/trace-follower.json >/dev/null \
  || { echo "follower trace not retained as slow: $(jq -c '{reason,duration_ms}' /tmp/trace-follower.json)"; exit 1; }
# ...and its span tree crosses the proxy hop.
jq -e "$jq_names | contains([\"replica.primary_hop\"])" /tmp/trace-follower.json >/dev/null \
  || { echo "follower span tree has no replica.primary_hop: $(jq -c "$jq_names" /tmp/trace-follower.json)"; exit 1; }

# The primary holds the same request ID, rooted under the follower's hop
# span, with the pipeline visible down to the WAL fsync.
curl -sf "$PBASE/v2/debug/traces/trace-smoke-1" > /tmp/trace-primary.json
jq -e '.remote | startswith("trace-smoke-1/")' /tmp/trace-primary.json >/dev/null \
  || { echo "primary trace not parented under the follower hop: $(jq -c '.remote' /tmp/trace-primary.json)"; exit 1; }
for span in service.certify store.add wal.fsync; do
  jq -e "$jq_names | contains([\"$span\"])" /tmp/trace-primary.json >/dev/null \
    || { echo "primary span tree has no $span: $(jq -c "$jq_names" /tmp/trace-primary.json)"; exit 1; }
done

# Listing filters: the slow insert survives min_ms=1 on its route and
# vanishes under a route it never took.
curl -sf "$FBASE/v2/debug/traces?min_ms=1&route=/v2/insert" | \
  jq -e '.traces | map(.id) | contains(["trace-smoke-1"])' >/dev/null
curl -sf "$FBASE/v2/debug/traces?route=/v2/classify" | \
  jq -e '.traces | map(.id) | contains(["trace-smoke-1"]) | not' >/dev/null

# An error request is always retained, sample rate be damned.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H "$CT" -H 'X-Request-Id: trace-smoke-err' \
  "$FBASE/v2/classify" -d '{not json')
[ "$CODE" = "400" ] || { echo "bad body answered $CODE, want 400"; exit 1; }
curl -sf "$FBASE/v2/debug/traces/trace-smoke-err" | jq -e '.reason == "error" and .status == 400' >/dev/null \
  || { echo "error trace not retained at -trace-sample 0"; exit 1; }

# The recorder reports its own health on /metrics. (Scrape to a file:
# grep -q closing the pipe early would trip curl under pipefail.)
curl -sf "$FBASE/metrics" > /tmp/trace-metrics.txt
grep -q '^npn_trace_retained_total ' /tmp/trace-metrics.txt \
  || { echo "no npn_trace_retained_total series"; exit 1; }
grep -q '^npn_trace_dropped_total ' /tmp/trace-metrics.txt \
  || { echo "no npn_trace_dropped_total series"; exit 1; }

echo "trace-smoke: OK"
