#!/usr/bin/env bash
# wait-healthz.sh BASE_URL [TRIES]
#
# Polls BASE_URL/healthz every 0.1s until it answers 2xx, failing after
# TRIES attempts (default 100, i.e. ~10s). Shared by every CI smoke step
# that has to wait for an npnserve to come up.
set -euo pipefail

url="${1:?usage: wait-healthz.sh http://host:port [tries]}"
tries="${2:-100}"

for ((i = 0; i < tries; i++)); do
  if curl -sf "${url}/healthz" >/dev/null 2>&1; then
    exit 0
  fi
  sleep 0.1
done
echo "wait-healthz: no healthy /healthz at ${url} after ${tries} tries" >&2
exit 1
