// Command npnclassify reads truth tables (one hexadecimal table per line)
// and classifies them under NPN equivalence with the paper's signature
// classifier. It prints the class count and, optionally, the class id of
// every input function or an exact-classification comparison.
//
// Usage:
//
//	npnclassify -n 6 [-in file] [-sig all|ocv1|oiv|osv|...] [-ids] [-exact] [-strict]
//
// Input lines may be blank or start with '#' (ignored). With -in omitted,
// stdin is read.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/tt"
	"repro/internal/ttio"
)

func main() {
	var (
		n      = flag.Int("n", 0, "number of variables (required)")
		inPath = flag.String("in", "", "input file (default stdin)")
		sigSel = flag.String("sig", "all", "signature selection: comma list of ocv1,ocv2,oiv,osv,osdv or 'all'")
		ids    = flag.Bool("ids", false, "print per-function class ids")
		exact  = flag.Bool("exact", false, "also run the exact classifier and report accuracy")
		strict = flag.Bool("strict", false, "bucket by full MSV keys instead of 64-bit hashes")
	)
	flag.Parse()
	if *n <= 0 || *n > tt.MaxVars {
		fmt.Fprintf(os.Stderr, "npnclassify: -n must be in 1..%d\n", tt.MaxVars)
		os.Exit(2)
	}

	cfg, err := parseConfig(*sigSel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npnclassify:", err)
		os.Exit(2)
	}
	cfg.StrictKeys = *strict
	cfg.FastOSDV = true

	in := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npnclassify:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	fs, err := ttio.Read(in, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npnclassify:", err)
		os.Exit(1)
	}

	cls := core.New(*n, cfg)
	start := time.Now()
	res := cls.Classify(fs)
	elapsed := time.Since(start)

	fmt.Printf("functions: %d\n", len(fs))
	fmt.Printf("classes:   %d (signatures: %s)\n", res.NumClasses, cfg.Enabled())
	fmt.Printf("time:      %.4fs\n", elapsed.Seconds())

	if *exact {
		start = time.Now()
		ex := match.ExactClassify(fs)
		fmt.Printf("exact:     %d classes in %.4fs (pairwise comparisons: %d)\n",
			ex.NumClasses, time.Since(start).Seconds(), ex.Comparisons)
	}

	if *ids {
		for i, f := range fs {
			fmt.Printf("%s %d\n", f.Hex(), res.ClassOf[i])
		}
	}
}

func parseConfig(sel string) (core.Config, error) {
	if sel == "all" {
		return core.ConfigAll(), nil
	}
	var cfg core.Config
	for _, part := range strings.Split(sel, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "ocv1":
			cfg.OCV1 = true
		case "ocv2":
			cfg.OCV2 = true
		case "oiv":
			cfg.OIV = true
		case "osv":
			cfg.OSV = true
		case "osdv":
			cfg.OSDV = true
		case "":
		default:
			return cfg, fmt.Errorf("unknown signature %q", part)
		}
	}
	return cfg, nil
}
