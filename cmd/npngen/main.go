// Command npngen generates NPN-classification workloads as hexadecimal truth
// tables, one per line — the format npnclassify consumes.
//
// Usage:
//
//	npngen -kind circuit|uniform|consecutive -n 6 [-count 1000] [-seed 1] [-cuts 16]
//
// The circuit kind runs cut enumeration over the synthetic EPFL-like suite
// and emits deduplicated cut functions of exactly n variables (the paper's
// §V-A workload); uniform and consecutive emit random truth-table streams
// (consecutive is the Fig. 5 encoding).
package main

import (
	"flag"
	"fmt"
	"os"

	aigpkg "repro/internal/aig"
	"repro/internal/cut"
	"repro/internal/gen"
	"repro/internal/tt"
	"repro/internal/ttio"
)

func main() {
	var (
		kind  = flag.String("kind", "circuit", "workload kind: circuit, uniform, consecutive, aag")
		n     = flag.Int("n", 6, "number of variables")
		count = flag.Int("count", 0, "number of functions (uniform/consecutive; 0 for circuit = all)")
		seed  = flag.Int64("seed", 1, "random seed")
		cuts  = flag.Int("cuts", 16, "priority cuts per node (circuit kind)")
		aag   = flag.String("aag", "", "ASCII AIGER file to harvest cuts from (kind=aag)")
	)
	flag.Parse()
	if *n <= 0 || *n > tt.MaxVars {
		fmt.Fprintf(os.Stderr, "npngen: -n must be in 1..%d\n", tt.MaxVars)
		os.Exit(2)
	}

	var fs []*tt.TT
	switch *kind {
	case "circuit":
		fs = gen.CircuitWorkload(*n, *cuts, *seed)
		if *count > 0 && len(fs) > *count {
			fs = fs[:*count]
		}
	case "uniform":
		c := *count
		if c == 0 {
			c = 1000
		}
		fs = gen.UniformRandom(*n, c, *seed)
	case "consecutive":
		c := *count
		if c == 0 {
			c = 1000
		}
		fs = gen.Consecutive(*n, c, *seed)
	case "aag":
		// Harvest cuts from a user-supplied AIGER circuit — with EPFL
		// benchmark files on disk this is the paper's original pipeline.
		if *aag == "" {
			fmt.Fprintln(os.Stderr, "npngen: kind=aag requires -aag <file>")
			os.Exit(2)
		}
		f, err := os.Open(*aag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npngen:", err)
			os.Exit(1)
		}
		g, err := aigpkg.ReadAAG(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "npngen:", err)
			os.Exit(1)
		}
		fs = cut.Harvest(g, *n, cut.Options{K: *n, MaxPerNode: *cuts})
		if *count > 0 && len(fs) > *count {
			fs = fs[:*count]
		}
	default:
		fmt.Fprintf(os.Stderr, "npngen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	header := fmt.Sprintf("kind=%s n=%d count=%d seed=%d", *kind, *n, len(fs), *seed)
	if err := ttio.Write(os.Stdout, fs, header); err != nil {
		fmt.Fprintln(os.Stderr, "npngen:", err)
		os.Exit(1)
	}
}
