// Command npnmap runs the k-LUT technology mapper over a circuit — either
// one of the built-in synthetic generators or an ASCII AIGER file — and
// reports the LUT count, depth, and the NPN class census of the mapping
// (the cell-library size classification buys). Mappings are verified
// functionally before reporting: exhaustively when the PI count allows,
// by random simulation otherwise.
//
// Usage:
//
//	npnmap -circuit adder16|mult6|shifter32|alu8|voter81 [-k 6] [-mode depth|area]
//	npnmap -aag file.aag [-k 6] [-mode depth|area]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aig"
	"repro/internal/gen"
	"repro/internal/mapper"
)

func main() {
	var (
		circuit = flag.String("circuit", "adder16", "built-in circuit: adder16, cla12, mult6, shifter32, alu8, voter81, parity12, decoder5")
		aagPath = flag.String("aag", "", "ASCII AIGER file to map instead of a built-in")
		k       = flag.Int("k", 6, "LUT size")
		mode    = flag.String("mode", "depth", "objective: depth or area")
		cuts    = flag.Int("cuts", 8, "priority cuts per node")
	)
	flag.Parse()

	var g *aig.AIG
	var name string
	if *aagPath != "" {
		f, err := os.Open(*aagPath)
		if err != nil {
			fatal(err)
		}
		g2, err := aig.ReadAAG(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		g, name = g2, *aagPath
	} else {
		builtins := map[string]func() *aig.AIG{
			"adder16":   func() *aig.AIG { return gen.RippleCarryAdder(16) },
			"cla12":     func() *aig.AIG { return gen.CarryLookaheadAdder(12) },
			"mult6":     func() *aig.AIG { return gen.ArrayMultiplier(6) },
			"shifter32": func() *aig.AIG { return gen.BarrelShifter(32) },
			"alu8":      func() *aig.AIG { return gen.ALUSlice(8) },
			"voter81":   func() *aig.AIG { return gen.Voter(4) },
			"parity12":  func() *aig.AIG { return gen.ParityTree(12) },
			"decoder5":  func() *aig.AIG { return gen.Decoder(5) },
		}
		mk, ok := builtins[*circuit]
		if !ok {
			fatal(fmt.Errorf("unknown circuit %q", *circuit))
		}
		g, name = mk(), *circuit
	}

	m := mapper.Depth
	switch *mode {
	case "depth":
	case "area":
		m = mapper.Area
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	r, err := mapper.Map(g, mapper.Options{K: *k, CutsPerNode: *cuts, Mode: m})
	if err != nil {
		fatal(err)
	}
	if g.NumPIs() <= 14 {
		err = mapper.Verify(g, r)
	} else {
		err = mapper.VerifySampled(g, r, 64, 1)
	}
	if err != nil {
		fatal(fmt.Errorf("mapping verification failed: %v", err))
	}

	fmt.Printf("circuit:     %s (%d PIs, %d ANDs, %d POs)\n", name, g.NumPIs(), g.NumAnds(), len(g.POs()))
	fmt.Printf("mapping:     %d %d-LUTs, depth %d (%s mode), verified\n", r.Area(), *k, r.Depth, *mode)
	fmt.Printf("library:     %d distinct functions -> %d NPN classes\n", r.Funcs, r.NumClasses())
	fmt.Println("\nclass census (key: count):")
	for key, count := range r.Classes {
		fmt.Printf("  %016x: %d\n", key, count)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npnmap:", err)
	os.Exit(1)
}
