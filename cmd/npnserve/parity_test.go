package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/replica"
	"repro/pkg/client"
)

// TestFollowerMetricsStatsParity is the exposition-parity check for the
// replication series: every npn_replica_* family the follower registers
// must round-trip through a live /metrics scrape (obs.Parse via
// client.Metrics) and agree with the replication section of /v2/stats —
// two renderings of one underlying state.
func TestFollowerMetricsStatsParity(t *testing.T) {
	ctx := context.Background()
	pc, _ := startServer(t, metricsConfig(t))
	if _, err := pc.Insert(ctx, []string{"1ee1", "cafef00dcafef00d"}); err != nil {
		t.Fatal(err)
	}

	fcfg := config{arities: "4-6", shards: 4, cache: 16,
		follow: pc.Base(), followMode: "proxy", followInterval: time.Hour,
		metrics: true}
	fol, err := buildFollower(fcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	fopts, err := fcfg.handlerOptions(fol.Registry())
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(replica.NewHandlerOpts(fol, fopts))
	t.Cleanup(fsrv.Close)
	fc := client.New(fsrv.URL)

	// Touch the proxy path so the proxied counters are nonzero: a miss
	// re-asked of the primary and an insert forwarded to it.
	if _, err := fc.Classify(ctx, []string{"8000000000000001"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Insert(ctx, []string{"17ff"}); err != nil {
		t.Fatal(err)
	}

	sc, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Replication replica.Stats `json:"replication"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	st := body.Replication

	// Every replication family must be present in the exposition.
	families := []string{
		"npn_replica_lag_segments", "npn_replica_lag_bytes",
		"npn_replica_applied_records_total",
		"npn_replica_syncs_total", "npn_replica_sync_errors_total",
		"npn_replica_snapshot_loads_total",
		"npn_replica_proxied_classifies_total", "npn_replica_proxied_inserts_total",
		"npn_replica_proxy_errors_total",
		"npn_replica_stale", "npn_replica_last_sync_age_seconds",
	}
	for _, f := range families {
		if !sc.Has(f) {
			t.Errorf("exposition has no %s family", f)
		}
	}

	// And each must agree with the stats rendering of the same state.
	// Arity-labeled families compare as their sum against the stats
	// totals; the scrape and the stats call are sequential with no
	// replication traffic between them, so the values are stable.
	for _, tc := range []struct {
		family string
		want   float64
	}{
		{"npn_replica_lag_segments", float64(st.LagSegments)},
		{"npn_replica_lag_bytes", float64(st.LagBytes)},
		{"npn_replica_applied_records_total", float64(st.AppliedRecords)},
		{"npn_replica_syncs_total", float64(st.Syncs)},
		{"npn_replica_sync_errors_total", float64(st.SyncErrors)},
		{"npn_replica_snapshot_loads_total", float64(st.SnapshotLoads)},
		{"npn_replica_proxied_classifies_total", float64(st.ProxiedClassifies)},
		{"npn_replica_proxied_inserts_total", float64(st.ProxiedInserts)},
		{"npn_replica_proxy_errors_total", float64(st.ProxyErrors)},
	} {
		if got := sc.Sum(tc.family); got != tc.want {
			t.Errorf("%s = %v, stats section says %v", tc.family, got, tc.want)
		}
	}
	if st.ProxiedClassifies == 0 || st.ProxiedInserts == 0 {
		t.Errorf("proxy counters untouched (%d classifies, %d inserts): the parity check proved nothing",
			st.ProxiedClassifies, st.ProxiedInserts)
	}

	wantStale := 0.0
	if st.Stale {
		wantStale = 1
	}
	if got, ok := sc.Value("npn_replica_stale"); !ok || got != wantStale {
		t.Errorf("npn_replica_stale = %v (ok=%v), stats says %v", got, ok, st.Stale)
	}
	// The age gauge and LastSyncAgeMs are sampled at different instants,
	// so parity is sign-level: both nonnegative after a successful sync.
	age, ok := sc.Value("npn_replica_last_sync_age_seconds")
	if !ok || (age >= 0) != (st.LastSyncAgeMs >= 0) {
		t.Errorf("npn_replica_last_sync_age_seconds = %v (ok=%v), stats age %vms disagrees on sign",
			age, ok, st.LastSyncAgeMs)
	}
}
