package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/pkg/client"
)

// traceConfig is a metrics+trace flag configuration: every trace is
// retained (sample 1) unless the test overrides it.
func traceConfig(t *testing.T) config {
	cfg := metricsConfig(t)
	cfg.trace = true
	cfg.traceSample = 1
	return cfg
}

// spanNames flattens a span tree into the set of span names it contains.
func spanNames(n obs.SpanNode, into map[string]bool) {
	into[n.Name] = true
	for _, c := range n.Children {
		spanNames(c, into)
	}
}

// TestTraceProxiedInsertEndToEnd is the acceptance scenario: an insert
// through a proxy-mode follower leaves two retained traces under the one
// pinned X-Request-Id — the follower's (guard + primary hop) and the
// primary's (guard, queue, certify, store, WAL fsync), the latter rooted
// under the follower's hop span via X-Trace-Parent.
func TestTraceProxiedInsertEndToEnd(t *testing.T) {
	ctx := context.Background()
	pcfg := traceConfig(t)
	pcfg.anonRPS = 1000 // mount the guard so auth.guard spans exist
	pc, _ := startServer(t, pcfg)

	fcfg := config{arities: "4-6", shards: 4, cache: 16,
		follow: pc.Base(), followMode: "proxy", followInterval: time.Hour,
		metrics: true, slowRequest: time.Minute,
		trace: true, traceSample: 1, anonRPS: 1000}
	fol, err := buildFollower(fcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	fopts, err := fcfg.handlerOptions(fol.Registry())
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(replica.NewHandlerOpts(fol, fopts))
	t.Cleanup(fsrv.Close)
	fc := client.New(fsrv.URL)

	// The client stamps the context's request ID onto the wire, the
	// follower's middleware honors it, and the proxy hop forwards it — one
	// ID names the request on both processes.
	const reqID = "trace-e2e-1"
	ictx := obs.ContextWithRequestID(ctx, reqID)
	if _, err := fc.Insert(ictx, []string{"1ee1"}); err != nil {
		t.Fatal(err)
	}

	// Follower side: a fresh root whose tree crosses into the proxy hop.
	fd, err := fc.Trace(ctx, reqID)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Route != "/v2/insert" || fd.Status != 200 {
		t.Fatalf("follower trace summary %+v", fd.TraceSummary)
	}
	if fd.Remote != "" {
		t.Fatalf("follower trace remote = %q, want a fresh root", fd.Remote)
	}
	fspans := map[string]bool{}
	spanNames(fd.Root, fspans)
	for _, want := range []string{"auth.guard", "replica.primary_hop"} {
		if !fspans[want] {
			t.Errorf("follower trace has no %s span (got %v)", want, fspans)
		}
	}

	// Primary side: the same request ID, rooted under the follower's hop
	// span, with the full pipeline visible down to the WAL fsync.
	pd, err := pc.Trace(ctx, reqID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pd.Remote, reqID+"/") {
		t.Fatalf("primary trace remote = %q, want %s/<span>", pd.Remote, reqID)
	}
	pspans := map[string]bool{}
	spanNames(pd.Root, pspans)
	for _, want := range []string{"auth.guard", "federation.route",
		"service.batch", "service.queue", "service.certify",
		"store.add", "store.certify", "wal.append", "wal.fsync"} {
		if !pspans[want] {
			t.Errorf("primary trace has no %s span (got %v)", want, pspans)
		}
	}

	// Both recorders report the retention through their counters.
	sc, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("npn_trace_retained_total"); !ok || v < 1 {
		t.Errorf("npn_trace_retained_total = %v (ok=%v), want >= 1", v, ok)
	}
}

// TestTraceErrorAlwaysRetained pins the tail-sampling contract at sample
// zero: a failing request is always in the flight recorder, a fast
// successful one never is.
func TestTraceErrorAlwaysRetained(t *testing.T) {
	ctx := context.Background()
	cfg := traceConfig(t)
	cfg.traceSample = 0
	c, _ := startServer(t, cfg)

	okCtx := obs.ContextWithRequestID(ctx, "sampled-out")
	if _, err := c.Insert(okCtx, []string{"1ee1"}); err != nil {
		t.Fatal(err)
	}
	errCtx := obs.ContextWithRequestID(ctx, "kept-error")
	status, _, err := c.Post(errCtx, "/v2/classify", "application/json", []byte("{not json"))
	if err != nil || status != 400 {
		t.Fatalf("bad body: status %d, err %v", status, err)
	}

	d, err := c.Trace(ctx, "kept-error")
	if err != nil {
		t.Fatalf("error trace not retained at sample 0: %v", err)
	}
	if d.Reason != "error" || d.Status != 400 {
		t.Fatalf("error trace reason=%q status=%d, want error/400", d.Reason, d.Status)
	}

	if _, err := c.Trace(ctx, "sampled-out"); err == nil {
		t.Fatal("fast successful trace retained at sample 0")
	} else if e, ok := err.(*api.Error); !ok || e.Code != api.CodeNotFound {
		t.Fatalf("miss error = %v, want not_found", err)
	}

	// The listing honors its filters over the retained set.
	l, err := c.Traces(ctx, client.TraceQuery{Route: "/v2/classify"})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Traces) != 1 || l.Traces[0].ID != "kept-error" {
		t.Fatalf("route-filtered listing = %+v", l.Traces)
	}
	if l, err = c.Traces(ctx, client.TraceQuery{Route: "/v2/insert"}); err != nil || len(l.Traces) != 0 {
		t.Fatalf("listing for an unretained route = %+v, %v", l, err)
	}
}

// TestTraceDebugRoutesAuthenticatedAndListed: on a keyed edge the
// flight-recorder routes demand credentials like any API route — trace
// details name client identities — but skip rate limiting, so an
// authorized operator reads them through exactly the overload being
// debugged. Both are listed in /v2/spec.
func TestTraceDebugRoutesAuthenticatedAndListed(t *testing.T) {
	ctx := context.Background()
	cfg := traceConfig(t)
	cfg.keyInline = "ci:sekrit:1:1" // burst-1 quota: one API call, then 429
	c, _ := startServer(t, cfg)     // keyless client

	if _, err := c.Classify(ctx, []string{"1ee1"}); err == nil {
		t.Fatal("keyless classify served on a keyed server")
	}
	if _, err := c.Traces(ctx, client.TraceQuery{}); err == nil {
		t.Fatal("keyless /v2/debug/traces served on a keyed server")
	} else if e, ok := err.(*api.Error); !ok || e.Code != api.CodeUnauthorized {
		t.Fatalf("keyless trace read = %v, want unauthorized", err)
	}

	kc := client.New(c.Base(), client.WithAPIKey("sekrit"))
	// Repeated reads through a burst-1 quota: authenticated trace reads
	// are never rate-limited and spend no tokens.
	for i := 0; i < 3; i++ {
		if _, err := kc.Traces(ctx, client.TraceQuery{}); err != nil {
			t.Fatalf("keyed trace read %d refused: %v", i, err)
		}
	}
	spec, err := kc.Spec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mounted := map[string]bool{}
	for _, rt := range spec.Routes {
		mounted[rt.Method+" "+rt.Pattern] = true
	}
	for _, want := range []string{"GET /v2/debug/traces", "GET /v2/debug/traces/{id}"} {
		if !mounted[want] {
			t.Fatalf("spec is missing %q", want)
		}
	}
}

// TestTraceOffMountsNothing: without -trace the debug routes do not
// exist and requests pay no tracing cost.
func TestTraceOffMountsNothing(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, metricsConfig(t))
	if _, err := c.Traces(ctx, client.TraceQuery{}); err == nil {
		t.Fatal("GET /v2/debug/traces served without -trace")
	} else if e, ok := err.(*api.Error); !ok || e.Code != api.CodeNotFound {
		t.Fatalf("want not_found, got %v", err)
	}
}
