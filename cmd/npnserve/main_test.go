package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/aig"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/gen"
	"repro/internal/npn"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/tt"
	"repro/pkg/client"
)

// startServer builds the flag-configured registry and serves it over a
// real TCP listener via httptest — the full stack a client sees — and
// returns the official client pointed at it. pkg/client is the only HTTP
// client these end-to-end tests use.
func startServer(t *testing.T, cfg config) (*client.Client, *federation.Registry) {
	t.Helper()
	reg, err := buildRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.loadPath != "" {
		if _, err := loadSnapshots(reg, cfg.loadPath); err != nil {
			t.Fatal(err)
		}
	}
	hopts, err := cfg.handlerOptions(reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(federation.NewHandlerOpts(reg, hopts))
	t.Cleanup(srv.Close)
	return client.New(srv.URL), reg
}

// TestEndToEndMixedArity drives the acceptance scenario through
// pkg/client: a single batch of truth tables spanning every arity
// n = 4..10 is inserted into one server, then a single mixed-arity batch
// of NPN variants is classified; every answer must carry the right class
// key and a witness the matcher semantics certify (replayed locally by
// client.ReplayWitness), and the per-arity stats breakdown must account
// for exactly the routed traffic.
func TestEndToEndMixedArity(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, config{arities: "4-10", shards: 8, workers: 2, cache: 128})

	rng := rand.New(rand.NewSource(700))
	var base []*tt.TT
	var hexes []string
	for n := 4; n <= 10; n++ {
		for k := 0; k < 2; k++ {
			f := tt.Random(n, rng)
			base = append(base, f)
			hexes = append(hexes, f.Hex())
		}
	}
	// Interleave arities so routing has to scatter-gather, not just split.
	rng.Shuffle(len(base), func(i, j int) {
		base[i], base[j] = base[j], base[i]
		hexes[i], hexes[j] = hexes[j], hexes[i]
	})

	ins, err := c.Insert(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Errors != 0 {
		t.Fatalf("insert reported %d item errors", ins.Errors)
	}
	classOf := make(map[int]string)
	for i, r := range ins.Results {
		if r.Function != hexes[i] {
			t.Fatalf("insert result %d echoes %q, want %q", i, r.Function, hexes[i])
		}
		classOf[i] = fmt.Sprintf("%s:%d", r.Class, r.Index)
	}

	variants := make([]string, len(base))
	for i, f := range base {
		variants[i] = randomTransformed(rng, f).Hex()
	}
	cls, err := c.Classify(ctx, variants)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		n := base[i].NumVars()
		if !r.Hit {
			t.Fatalf("variant %d (n=%d) missed its class", i, n)
		}
		if got := fmt.Sprintf("%s:%d", r.Class, *r.Index); got != classOf[i] {
			t.Fatalf("variant %d classified as %s, inserted as %s", i, got, classOf[i])
		}
		if err := client.ReplayWitness(r); err != nil {
			t.Fatalf("variant %d (n=%d): %v", i, n, err)
		}
	}

	// Stats must reflect the routed traffic, per arity and in total.
	raw, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var st federation.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.MinVars != 4 || st.MaxVars != 10 || len(st.PerArity) != 7 {
		t.Fatalf("stats shape %+v", st)
	}
	if st.Totals.Inserts != int64(len(base)) || st.Totals.Hits != int64(len(base)) {
		t.Fatalf("totals %+v", st.Totals)
	}
	for _, s := range st.PerArity {
		if s.Inserts != 2 || s.Lookups != 2 {
			t.Fatalf("arity %d saw %d inserts and %d lookups, want 2 and 2", s.Arity, s.Inserts, s.Lookups)
		}
	}

	// Liveness.
	status, _, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
}

// randomTransformed applies a random NPN transform to f.
func randomTransformed(rng *rand.Rand, f *tt.TT) *tt.TT {
	return npn.RandomTransform(f.NumVars(), rng).Apply(f)
}

// TestPerItemErrors: one bad truth table fails only its own item on /v2,
// and the error codes are the stable taxonomy.
func TestPerItemErrors(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, config{arities: "4-6", shards: 4, cache: 16})

	good := "cafef00dcafef00d" // n=6
	cls, err := c.Classify(ctx, []string{good, "zzzz", "ab"})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Errors != 2 {
		t.Fatalf("errors = %d, want 2", cls.Errors)
	}
	if cls.Results[0].Error != nil {
		t.Fatalf("good item failed: %+v", cls.Results[0].Error)
	}
	if cls.Results[1].Error == nil || cls.Results[1].Error.Code != api.CodeBadHex {
		t.Fatalf("bad hex item: %+v", cls.Results[1].Error)
	}
	if cls.Results[2].Error == nil || cls.Results[2].Error.Code != api.CodeArityOutOfRange {
		t.Fatalf("bad arity item: %+v", cls.Results[2].Error)
	}

	ins, err := c.Insert(ctx, []string{"zz", good})
	if err != nil {
		t.Fatal(err)
	}
	if ins.Errors != 1 || ins.Results[0].Error == nil || ins.Results[1].Error != nil || !ins.Results[1].New {
		t.Fatalf("insert per-item errors: %+v", ins.Results)
	}
}

// TestV1ShimStillServes drives the same flow through the deprecated /v1
// surface (via the client's raw escape hatch) and checks it agrees with
// /v2 semantically.
func TestV1ShimStillServes(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, config{arities: "4-6", shards: 4, cache: 16})

	body := []byte(`{"functions":["cafef00dcafef00d","1ee1"]}`)
	status, raw, err := c.Post(ctx, "/v1/insert", "application/json", body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("v1 insert: %d %v (%s)", status, err, raw)
	}
	var v1 struct {
		Results []struct {
			Function string `json:"function"`
			Class    string `json:"class"`
			Index    int    `json:"index"`
			New      bool   `json:"new"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &v1); err != nil {
		t.Fatal(err)
	}
	cls, err := c.Classify(ctx, []string{"cafef00dcafef00d", "1ee1"})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit || r.Class != v1.Results[i].Class || *r.Index != v1.Results[i].Index {
			t.Fatalf("v1/v2 disagree on item %d: v1=(%s,%d) v2=%+v", i, v1.Results[i].Class, v1.Results[i].Index, r)
		}
	}

	// The v1 whole-batch contract is preserved: one bad function fails
	// the request with a 400 and the flat {"error": "..."} body.
	status, raw, err = c.Post(ctx, "/v1/classify", "application/json", []byte(`{"functions":["cafef00dcafef00d","zz"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest || !strings.Contains(string(raw), `"error":"functions[1]`) {
		t.Fatalf("v1 whole-batch error: %d %s", status, raw)
	}
}

// TestJSONFallbacks: unmatched routes and wrong methods answer the /v2
// JSON error envelope (with Allow on 405) on every stack.
func TestJSONFallbacks(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, config{arities: "4-6", shards: 4, cache: 16})

	status, raw, err := c.Get(ctx, "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorEnvelope
	if status != http.StatusNotFound || json.Unmarshal(raw, &env) != nil || env.Error == nil || env.Error.Code != api.CodeNotFound {
		t.Fatalf("404 fallback: %d %s", status, raw)
	}

	status, raw, err = c.Get(ctx, "/v2/classify") // GET on a POST route
	if err != nil {
		t.Fatal(err)
	}
	env = api.ErrorEnvelope{}
	if status != http.StatusMethodNotAllowed || json.Unmarshal(raw, &env) != nil || env.Error == nil || env.Error.Code != api.CodeMethodNotAllowed {
		t.Fatalf("405 fallback: %d %s", status, raw)
	}

	// Wrong content type on a POST: unsupported_media_type, not a decode
	// error.
	status, raw, err = c.Post(ctx, "/v2/classify", "text/csv", []byte(`{"functions":["1ee1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	env = api.ErrorEnvelope{}
	if status != http.StatusUnsupportedMediaType || json.Unmarshal(raw, &env) != nil || env.Error == nil || env.Error.Code != api.CodeUnsupportedMediaType {
		t.Fatalf("415 gate: %d %s", status, raw)
	}
}

// TestSpecCoversRoutes: GET /v2/spec lists every mounted route — proved
// by asking for each one and never hitting the not_found fallback — and
// the headline endpoints are all present.
func TestSpecCoversRoutes(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, config{arities: "4-6", shards: 4, cache: 16})

	spec, err := c.Spec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if spec.APIVersion != api.Version || spec.Role != "federated" {
		t.Fatalf("spec header %+v", spec)
	}
	want := []string{
		"POST /v2/classify", "POST /v2/insert",
		"POST /v2/classify/stream", "POST /v2/insert/stream",
		"POST /v2/map", "POST /v2/compact", "GET /v2/stats", "GET /v2/spec",
		"GET /healthz", "POST /v1/classify", "POST /v1/insert",
	}
	mounted := make(map[string]bool)
	for _, rt := range spec.Routes {
		mounted[rt.Method+" "+rt.Pattern] = true
	}
	for _, w := range want {
		if !mounted[w] {
			t.Fatalf("spec is missing %q (routes: %v)", w, spec.Routes)
		}
	}
	if len(spec.ErrorCodes) == 0 {
		t.Fatal("spec lists no error codes")
	}

	// Every spec route must be live: asking with the right method must
	// never reach the not_found or method_not_allowed fallback.
	for _, rt := range spec.Routes {
		path := strings.NewReplacer("{arity}", "5", "{seq}", "1").Replace(rt.Pattern)
		var status int
		var err error
		switch rt.Method {
		case http.MethodGet:
			status, _, err = c.Get(ctx, path)
		case http.MethodPost:
			status, _, err = c.Post(ctx, path, "application/json", nil)
		default:
			t.Fatalf("unexpected method %q in spec", rt.Method)
		}
		if err != nil {
			t.Fatalf("%s %s: %v", rt.Method, path, err)
		}
		if status == http.StatusNotFound || status == http.StatusMethodNotAllowed {
			t.Fatalf("%s %s answered %d: spec lists a route the mux does not serve", rt.Method, path, status)
		}
	}
}

// TestMapEndpoint uploads a real circuit through the client and checks
// the verified mapping plus the census, and that insert=true warms the
// classifier: the LUT functions must then classify as hits.
func TestMapEndpoint(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, config{arities: "2-10", shards: 4, cache: 16})

	var aag strings.Builder
	if err := aig.WriteAAG(&aag, gen.RippleCarryAdder(8)); err != nil {
		t.Fatal(err)
	}

	res, err := c.Map(ctx, strings.NewReader(aag.String()), client.MapParams{K: 4, Mode: "depth", Insert: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.VerifyMethod != "sampled" && res.VerifyMethod != "exhaustive" {
		t.Fatalf("mapping not verified: %+v", res)
	}
	if res.Area != len(res.LUTs) || res.Area == 0 || res.Depth == 0 {
		t.Fatalf("mapping shape: area=%d depth=%d luts=%d", res.Area, res.Depth, len(res.LUTs))
	}
	census := 0
	for _, row := range res.Classes {
		census += row.Count
	}
	if census != res.Area {
		t.Fatalf("census counts %d LUTs, area is %d", census, res.Area)
	}
	if res.Inserted == nil || res.Inserted.ClassesCreated == 0 || res.Inserted.Errors != 0 {
		t.Fatalf("insert summary %+v", res.Inserted)
	}

	// The discovered classes really are in the store now: the K-padded
	// LUT functions classify as hits.
	var fns []string
	for _, l := range res.LUTs {
		f, err := tt.FromHex(l.Vars, l.Function)
		if err != nil {
			t.Fatal(err)
		}
		if f.NumVars() < res.K {
			f = f.Extend(res.K)
		}
		fns = append(fns, f.Hex())
	}
	cls, err := c.Classify(ctx, fns)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("mapped LUT %d not warmed into the classifier", i)
		}
	}

	// Parameter validation speaks the taxonomy.
	_, err = c.Map(ctx, strings.NewReader(aag.String()), client.MapParams{K: 40})
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodeArityOutOfRange {
		t.Fatalf("k=40 error: %v", err)
	}
	_, err = c.Map(ctx, strings.NewReader("not an aag"), client.MapParams{})
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodeBadCircuit {
		t.Fatalf("bad circuit error: %v", err)
	}
}

// TestParseArities covers the -arities forms and rejections.
func TestParseArities(t *testing.T) {
	for _, tc := range []struct {
		in     string
		lo, hi int
	}{
		{"6", 6, 6},
		{"4-10", 4, 10},
		{" 2 - 16 ", 2, 16},
	} {
		lo, hi, err := parseArities(tc.in)
		if err != nil || lo != tc.lo || hi != tc.hi {
			t.Fatalf("parseArities(%q) = (%d,%d,%v), want (%d,%d)", tc.in, lo, hi, err, tc.lo, tc.hi)
		}
	}
	for _, bad := range []string{"", "x", "1-6", "4-17", "10-4", "4-10-12"} {
		if _, _, err := parseArities(bad); err == nil {
			t.Fatalf("parseArities(%q) accepted", bad)
		}
	}
}

// TestBuildRegistryValidation rejects a malformed arity range.
func TestBuildRegistryValidation(t *testing.T) {
	if _, err := buildRegistry(config{arities: ""}); err == nil {
		t.Fatal("empty -arities accepted")
	}
	if _, err := buildRegistry(config{arities: fmt.Sprintf("4-%d", tt.MaxVars+1)}); err == nil {
		t.Fatal("oversized arity accepted")
	}
}

// TestLoadMissingDirFails rejects a mistyped -load directory instead of
// silently serving an empty store.
func TestLoadMissingDirFails(t *testing.T) {
	reg, err := buildRegistry(config{arities: "4-6"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshots(reg, "/does/not/exist"); err == nil {
		t.Fatal("nonexistent -load directory accepted")
	}
}

// TestSavePurgesStaleSnapshots checks that saveSnapshots removes
// n<arity>.tt files it did not write this run — both empty arities of
// the current range and leftovers of a wider previous range — so a
// reused directory cannot resurrect old classes, while foreign files
// are left alone.
func TestSavePurgesStaleSnapshots(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"n5.tt", "n9.tt", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("# stale\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := buildRegistry(config{arities: "4-6"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Insert([]*tt.TT{tt.MustFromHex(4, "1ee1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := saveSnapshots(reg, dir); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]bool{"n4.tt": true, "n5.tt": false, "n9.tt": false, "notes.txt": true} {
		_, err := os.Stat(filepath.Join(dir, name))
		if got := err == nil; got != want {
			t.Errorf("%s exists=%v after save, want %v", name, got, want)
		}
	}
}

// TestLoadSaveRoundTrip preseeds a federated server from the per-arity
// snapshot directory written by a previous instance — the persistence
// path of the -load/-save flags.
func TestLoadSaveRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	reg, err := buildRegistry(config{arities: "4-6", shards: 4, cache: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(701))
	var fs []*tt.TT
	for n := 4; n <= 6; n++ {
		for k := 0; k < 5; k++ {
			fs = append(fs, tt.Random(n, rng))
		}
	}
	if _, err := reg.Insert(fs); err != nil {
		t.Fatal(err)
	}
	saved, err := saveSnapshots(reg, dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range reg.Active() {
		svc, _ := reg.Service(n)
		total += svc.Store().Size()
		if _, err := os.Stat(snapshotFile(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
	if saved != total {
		t.Fatalf("saved %d classes, stores hold %d", saved, total)
	}

	c, reg2 := startServer(t, config{arities: "4-6", shards: 4, cache: 16, loadPath: dir})
	total2 := 0
	for _, n := range reg2.Active() {
		svc, _ := reg2.Service(n)
		total2 += svc.Store().Size()
	}
	if total2 != total {
		t.Fatalf("preloaded %d classes, want %d", total2, total)
	}
	cls, err := c.Classify(ctx, []string{fs[0].Hex(), fs[len(fs)-1].Hex()})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("preloaded class %d missed after snapshot round trip", i)
		}
	}
}

// TestFollowerFlagValidation: follower mode is memory-only and validates
// its own flags.
func TestFollowerFlagValidation(t *testing.T) {
	if _, err := buildFollower(config{arities: "4-6", follow: "http://x", dataDir: "/tmp/x"}, nil); err == nil {
		t.Fatal("-follow with -data accepted")
	}
	if _, err := buildFollower(config{arities: "4-6", follow: "http://x", savePath: "/tmp/x"}, nil); err == nil {
		t.Fatal("-follow with -save accepted")
	}
	if _, err := buildFollower(config{arities: "4-6", follow: "http://x", followMode: "mirror"}, nil); err == nil {
		t.Fatal("bogus -follow-mode accepted")
	}
	f, err := buildFollower(config{arities: "4-6", follow: "http://x/", followMode: "local"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Primary() != "http://x" || f.Mode() != replica.ModeLocal {
		t.Fatalf("follower wired as (%q, %v)", f.Primary(), f.Mode())
	}
}

// TestFollowerServerEndToEnd boots the flag-configured primary and
// follower stacks: inserts land on the primary over HTTP, one sync later
// the follower serves them locally with the same identity, and the
// follower's healthz reports its role.
func TestFollowerServerEndToEnd(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	pcfg := config{arities: "4-6", shards: 4, cache: 16, dataDir: dir, segmentBytes: 1 << 12}
	pc, _ := startServer(t, pcfg)

	rng := rand.New(rand.NewSource(704))
	var hexes []string
	for n := 4; n <= 6; n++ {
		for k := 0; k < 3; k++ {
			hexes = append(hexes, tt.Random(n, rng).Hex())
		}
	}
	ins, err := pc.Insert(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}

	fol, err := buildFollower(config{arities: "4-6", shards: 4, cache: 16,
		follow: pc.Base(), followMode: "local", followInterval: 50 * time.Millisecond,
		staleAfter: time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(replica.NewHandler(fol))
	t.Cleanup(fsrv.Close)
	fc := client.New(fsrv.URL)

	cls, err := fc.Classify(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit || r.Class != ins.Results[i].Class || *r.Index != ins.Results[i].Index {
			t.Fatalf("follower result %d = %+v, primary inserted (%s,%d)", i, r, ins.Results[i].Class, ins.Results[i].Index)
		}
	}

	status, hraw, err := fc.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	if err := json.Unmarshal(hraw, &health); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || health.Role != "follower" || health.Status != "ok" {
		t.Fatalf("follower healthz %d %+v", status, health)
	}
}

// TestParseKeyConfig covers the -config values and rejection.
func TestParseKeyConfig(t *testing.T) {
	if c, err := parseKeyConfig("full"); err != nil || c != (core.Config{}) {
		t.Fatalf("full -> %+v, %v", c, err)
	}
	if c, err := parseKeyConfig(" Serving "); err != nil || c != store.ServingConfig() {
		t.Fatalf("serving -> %+v, %v", c, err)
	}
	if _, err := parseKeyConfig("fast"); err == nil {
		t.Fatal("bogus -config accepted")
	}
}

// TestServingConfigFlag boots the flag-configured stack with -config
// serving and verifies the weaker key still serves certified answers.
func TestServingConfigFlag(t *testing.T) {
	ctx := context.Background()
	c, reg := startServer(t, config{arities: "4-6", shards: 4, cache: 16, keyConfig: "serving"})
	rng := rand.New(rand.NewSource(702))
	f := tt.Random(5, rng)
	if _, err := c.Insert(ctx, []string{f.Hex()}); err != nil {
		t.Fatal(err)
	}
	variant := randomTransformed(rng, f)
	cls, err := c.Classify(ctx, []string{variant.Hex()})
	if err != nil {
		t.Fatal(err)
	}
	if !cls.Results[0].Hit {
		t.Fatal("serving-config store missed an NPN variant")
	}
	svc, err := reg.Service(5)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Store().Config() != store.ServingConfig() {
		t.Fatalf("store config %+v, want ServingConfig", svc.Store().Config())
	}
}

// TestDurableServerRestart is the -data lifecycle across a simulated
// kill: insert over HTTP into a durable flag-configured server, abandon
// the registry without closing (per-append fsync makes every
// acknowledged insert durable), rebuild the stack on the same data
// directory and require every class back with its identity.
func TestDurableServerRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// fsyncInterval 0 = fsync every append, the kill-safe mode.
	cfg := config{arities: "4-6", shards: 4, cache: 16, keyConfig: "full",
		dataDir: dir, segmentBytes: 1 << 12}
	c, _ := startServer(t, cfg)

	rng := rand.New(rand.NewSource(703))
	var hexes []string
	for n := 4; n <= 6; n++ {
		for k := 0; k < 4; k++ {
			hexes = append(hexes, tt.Random(n, rng).Hex())
		}
	}
	ins, err := c.Insert(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Errors != 0 {
		t.Fatalf("insert errors %d", ins.Errors)
	}
	// SIGKILL: the first server's registry is simply abandoned.

	c2, _ := startServer(t, cfg)
	cls, err := c2.Classify(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("class %d lost across restart", i)
		}
		if r.Class != ins.Results[i].Class || *r.Index != ins.Results[i].Index {
			t.Fatalf("class %d identity changed across restart", i)
		}
	}

	// Admin compaction over HTTP (/v2), then a third restart from the
	// snapshot.
	if _, err := c2.Compact(ctx); err != nil {
		t.Fatalf("compact: %v", err)
	}
	c3, _ := startServer(t, cfg)
	cls, err = c3.Classify(ctx, hexes[:3])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("class %d lost after compaction restart", i)
		}
	}
}
