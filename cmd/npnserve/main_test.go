package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/npn"
	"repro/internal/service"
	"repro/internal/tt"
)

// startServer builds the flag-configured service and serves it over a
// real TCP listener via httptest — the full stack a client sees.
func startServer(t *testing.T, cfg config) (*httptest.Server, *service.Service) {
	t.Helper()
	svc, err := buildService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv, svc
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestEndToEnd drives the acceptance scenario: a batch of 6-variable
// truth tables is inserted, then a batch of NPN variants is classified;
// every answer must carry the right class key and a witness the matcher
// semantics certify (replayed locally against the returned rep).
func TestEndToEnd(t *testing.T) {
	n := 6
	srv, _ := startServer(t, config{n: n, shards: 8, workers: 2, cache: 128})

	rng := rand.New(rand.NewSource(700))
	base := make([]*tt.TT, 20)
	hexes := make([]string, len(base))
	for i := range base {
		base[i] = tt.Random(n, rng)
		hexes[i] = base[i].Hex()
	}

	resp, body := post(t, srv.URL+"/v1/insert", service.ClassifyRequest{Functions: hexes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	var ins service.InsertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatal(err)
	}
	classOf := make(map[int]string)
	for i, r := range ins.Results {
		classOf[i] = fmt.Sprintf("%s:%d", r.Class, r.Index)
	}

	variants := make([]string, len(base))
	varTT := make([]*tt.TT, len(base))
	for i, f := range base {
		varTT[i] = npn.RandomTransform(n, rng).Apply(f)
		variants[i] = varTT[i].Hex()
	}
	resp, body = post(t, srv.URL+"/v1/classify", service.ClassifyRequest{Functions: variants})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", resp.StatusCode, body)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("variant %d missed its class", i)
		}
		if got := fmt.Sprintf("%s:%d", r.Class, *r.Index); got != classOf[i] {
			t.Fatalf("variant %d classified as %s, inserted as %s", i, got, classOf[i])
		}
		tr, err := r.Witness.Transform()
		if err != nil {
			t.Fatalf("variant %d witness: %v", i, err)
		}
		if !tr.Apply(tt.MustFromHex(n, r.Rep)).Equal(varTT[i]) {
			t.Fatalf("variant %d: wire witness does not verify", i)
		}
	}

	// Stats must reflect the traffic.
	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Arity != n || st.Inserts != int64(len(base)) || st.Hits != int64(len(base)) {
		t.Fatalf("stats %+v", st)
	}

	// Liveness.
	hResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hResp.StatusCode)
	}
}

// TestBuildServiceValidation rejects a missing or out-of-range arity.
func TestBuildServiceValidation(t *testing.T) {
	if _, err := buildService(config{n: 0}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := buildService(config{n: tt.MaxVars + 1}); err == nil {
		t.Fatal("oversized arity accepted")
	}
}

// TestLoadSaveRoundTrip preseeds a server from a snapshot written by a
// previous instance — the persistence path of the -load/-save flags.
func TestLoadSaveRoundTrip(t *testing.T) {
	n := 5
	dir := t.TempDir()
	path := filepath.Join(dir, "classes.tt")

	svc, err := buildService(config{n: n, shards: 4, cache: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(701))
	fs := make([]*tt.TT, 15)
	for i := range fs {
		fs[i] = tt.Random(n, rng)
	}
	svc.Insert(fs)
	if err := saveSnapshot(svc, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	srv, svc2 := startServer(t, config{n: n, shards: 4, cache: 16, loadPath: path})
	if svc2.Store().Size() != svc.Store().Size() {
		t.Fatalf("preloaded %d classes, want %d", svc2.Store().Size(), svc.Store().Size())
	}
	resp, body := post(t, srv.URL+"/v1/classify", service.ClassifyRequest{Functions: []string{fs[0].Hex()}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", resp.StatusCode)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	if !cls.Results[0].Hit {
		t.Fatal("preloaded class missed after snapshot round trip")
	}
}
