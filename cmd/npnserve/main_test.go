package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/npn"
	"repro/internal/replica"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
)

// startServer builds the flag-configured registry and serves it over a
// real TCP listener via httptest — the full stack a client sees.
func startServer(t *testing.T, cfg config) (*httptest.Server, *federation.Registry) {
	t.Helper()
	reg, err := buildRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.loadPath != "" {
		if _, err := loadSnapshots(reg, cfg.loadPath); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(federation.NewHandler(reg))
	t.Cleanup(srv.Close)
	return srv, reg
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestEndToEndMixedArity drives the acceptance scenario: a single batch of
// truth tables spanning every arity n = 4..10 is inserted into one server,
// then a single mixed-arity batch of NPN variants is classified; every
// answer must carry the right class key and a witness the matcher
// semantics certify (replayed locally against the returned rep), and the
// per-arity stats breakdown must account for exactly the routed traffic.
func TestEndToEndMixedArity(t *testing.T) {
	srv, _ := startServer(t, config{arities: "4-10", shards: 8, workers: 2, cache: 128})

	rng := rand.New(rand.NewSource(700))
	var base []*tt.TT
	var hexes []string
	for n := 4; n <= 10; n++ {
		for k := 0; k < 2; k++ {
			f := tt.Random(n, rng)
			base = append(base, f)
			hexes = append(hexes, f.Hex())
		}
	}
	// Interleave arities so routing has to scatter-gather, not just split.
	rng.Shuffle(len(base), func(i, j int) {
		base[i], base[j] = base[j], base[i]
		hexes[i], hexes[j] = hexes[j], hexes[i]
	})

	resp, body := post(t, srv.URL+"/v1/insert", service.ClassifyRequest{Functions: hexes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	var ins service.InsertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatal(err)
	}
	classOf := make(map[int]string)
	for i, r := range ins.Results {
		if r.Function != hexes[i] {
			t.Fatalf("insert result %d echoes %q, want %q", i, r.Function, hexes[i])
		}
		classOf[i] = fmt.Sprintf("%s:%d", r.Class, r.Index)
	}

	variants := make([]string, len(base))
	varTT := make([]*tt.TT, len(base))
	for i, f := range base {
		varTT[i] = npn.RandomTransform(f.NumVars(), rng).Apply(f)
		variants[i] = varTT[i].Hex()
	}
	resp, body = post(t, srv.URL+"/v1/classify", service.ClassifyRequest{Functions: variants})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", resp.StatusCode, body)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		n := base[i].NumVars()
		if !r.Hit {
			t.Fatalf("variant %d (n=%d) missed its class", i, n)
		}
		if got := fmt.Sprintf("%s:%d", r.Class, *r.Index); got != classOf[i] {
			t.Fatalf("variant %d classified as %s, inserted as %s", i, got, classOf[i])
		}
		tr, err := r.Witness.Transform()
		if err != nil {
			t.Fatalf("variant %d witness: %v", i, err)
		}
		if !tr.Apply(tt.MustFromHex(n, r.Rep)).Equal(varTT[i]) {
			t.Fatalf("variant %d (n=%d): wire witness does not verify", i, n)
		}
	}

	// Stats must reflect the routed traffic, per arity and in total.
	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st federation.Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.MinVars != 4 || st.MaxVars != 10 || len(st.PerArity) != 7 {
		t.Fatalf("stats shape %+v", st)
	}
	if st.Totals.Inserts != int64(len(base)) || st.Totals.Hits != int64(len(base)) {
		t.Fatalf("totals %+v", st.Totals)
	}
	for _, s := range st.PerArity {
		if s.Inserts != 2 || s.Lookups != 2 {
			t.Fatalf("arity %d saw %d inserts and %d lookups, want 2 and 2", s.Arity, s.Inserts, s.Lookups)
		}
	}

	// Liveness.
	hResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hResp.StatusCode)
	}
}

// TestParseArities covers the -arities forms and rejections.
func TestParseArities(t *testing.T) {
	for _, tc := range []struct {
		in     string
		lo, hi int
	}{
		{"6", 6, 6},
		{"4-10", 4, 10},
		{" 2 - 16 ", 2, 16},
	} {
		lo, hi, err := parseArities(tc.in)
		if err != nil || lo != tc.lo || hi != tc.hi {
			t.Fatalf("parseArities(%q) = (%d,%d,%v), want (%d,%d)", tc.in, lo, hi, err, tc.lo, tc.hi)
		}
	}
	for _, bad := range []string{"", "x", "1-6", "4-17", "10-4", "4-10-12"} {
		if _, _, err := parseArities(bad); err == nil {
			t.Fatalf("parseArities(%q) accepted", bad)
		}
	}
}

// TestBuildRegistryValidation rejects a malformed arity range.
func TestBuildRegistryValidation(t *testing.T) {
	if _, err := buildRegistry(config{arities: ""}); err == nil {
		t.Fatal("empty -arities accepted")
	}
	if _, err := buildRegistry(config{arities: fmt.Sprintf("4-%d", tt.MaxVars+1)}); err == nil {
		t.Fatal("oversized arity accepted")
	}
}

// TestLoadMissingDirFails rejects a mistyped -load directory instead of
// silently serving an empty store.
func TestLoadMissingDirFails(t *testing.T) {
	reg, err := buildRegistry(config{arities: "4-6"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshots(reg, "/does/not/exist"); err == nil {
		t.Fatal("nonexistent -load directory accepted")
	}
}

// TestSavePurgesStaleSnapshots checks that saveSnapshots removes
// n<arity>.tt files it did not write this run — both empty arities of
// the current range and leftovers of a wider previous range — so a
// reused directory cannot resurrect old classes, while foreign files
// are left alone.
func TestSavePurgesStaleSnapshots(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"n5.tt", "n9.tt", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("# stale\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := buildRegistry(config{arities: "4-6"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Insert([]*tt.TT{tt.MustFromHex(4, "1ee1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := saveSnapshots(reg, dir); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]bool{"n4.tt": true, "n5.tt": false, "n9.tt": false, "notes.txt": true} {
		_, err := os.Stat(filepath.Join(dir, name))
		if got := err == nil; got != want {
			t.Errorf("%s exists=%v after save, want %v", name, got, want)
		}
	}
}

// TestLoadSaveRoundTrip preseeds a federated server from the per-arity
// snapshot directory written by a previous instance — the persistence
// path of the -load/-save flags.
func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg, err := buildRegistry(config{arities: "4-6", shards: 4, cache: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(701))
	var fs []*tt.TT
	for n := 4; n <= 6; n++ {
		for k := 0; k < 5; k++ {
			fs = append(fs, tt.Random(n, rng))
		}
	}
	if _, err := reg.Insert(fs); err != nil {
		t.Fatal(err)
	}
	saved, err := saveSnapshots(reg, dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range reg.Active() {
		svc, _ := reg.Service(n)
		total += svc.Store().Size()
		if _, err := os.Stat(snapshotFile(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
	if saved != total {
		t.Fatalf("saved %d classes, stores hold %d", saved, total)
	}

	srv, reg2 := startServer(t, config{arities: "4-6", shards: 4, cache: 16, loadPath: dir})
	total2 := 0
	for _, n := range reg2.Active() {
		svc, _ := reg2.Service(n)
		total2 += svc.Store().Size()
	}
	if total2 != total {
		t.Fatalf("preloaded %d classes, want %d", total2, total)
	}
	resp, body := post(t, srv.URL+"/v1/classify",
		service.ClassifyRequest{Functions: []string{fs[0].Hex(), fs[len(fs)-1].Hex()}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", resp.StatusCode)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("preloaded class %d missed after snapshot round trip", i)
		}
	}
}

// TestFollowerFlagValidation: follower mode is memory-only and validates
// its own flags.
func TestFollowerFlagValidation(t *testing.T) {
	if _, err := buildFollower(config{arities: "4-6", follow: "http://x", dataDir: "/tmp/x"}, nil); err == nil {
		t.Fatal("-follow with -data accepted")
	}
	if _, err := buildFollower(config{arities: "4-6", follow: "http://x", savePath: "/tmp/x"}, nil); err == nil {
		t.Fatal("-follow with -save accepted")
	}
	if _, err := buildFollower(config{arities: "4-6", follow: "http://x", followMode: "mirror"}, nil); err == nil {
		t.Fatal("bogus -follow-mode accepted")
	}
	f, err := buildFollower(config{arities: "4-6", follow: "http://x/", followMode: "local"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Primary() != "http://x" || f.Mode() != replica.ModeLocal {
		t.Fatalf("follower wired as (%q, %v)", f.Primary(), f.Mode())
	}
}

// TestFollowerServerEndToEnd boots the flag-configured primary and
// follower stacks: inserts land on the primary over HTTP, one sync later
// the follower serves them locally with the same identity, and the
// follower's healthz reports its role.
func TestFollowerServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	pcfg := config{arities: "4-6", shards: 4, cache: 16, dataDir: dir, segmentBytes: 1 << 12}
	psrv, _ := startServer(t, pcfg)

	rng := rand.New(rand.NewSource(704))
	var hexes []string
	for n := 4; n <= 6; n++ {
		for k := 0; k < 3; k++ {
			hexes = append(hexes, tt.Random(n, rng).Hex())
		}
	}
	resp, body := post(t, psrv.URL+"/v1/insert", service.ClassifyRequest{Functions: hexes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	var ins service.InsertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatal(err)
	}

	fol, err := buildFollower(config{arities: "4-6", shards: 4, cache: 16,
		follow: psrv.URL, followMode: "local", followInterval: 50 * time.Millisecond,
		staleAfter: time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(replica.NewHandler(fol))
	t.Cleanup(fsrv.Close)

	resp, body = post(t, fsrv.URL+"/v1/classify", service.ClassifyRequest{Functions: hexes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower classify status %d: %s", resp.StatusCode, body)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit || r.Class != ins.Results[i].Class || *r.Index != ins.Results[i].Index {
			t.Fatalf("follower result %d = %+v, primary inserted (%s,%d)", i, r, ins.Results[i].Class, ins.Results[i].Index)
		}
	}

	hresp, err := http.Get(fsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK || health.Role != "follower" || health.Status != "ok" {
		t.Fatalf("follower healthz %d %+v", hresp.StatusCode, health)
	}
}

// TestParseKeyConfig covers the -config values and rejection.
func TestParseKeyConfig(t *testing.T) {
	if c, err := parseKeyConfig("full"); err != nil || c != (core.Config{}) {
		t.Fatalf("full -> %+v, %v", c, err)
	}
	if c, err := parseKeyConfig(" Serving "); err != nil || c != store.ServingConfig() {
		t.Fatalf("serving -> %+v, %v", c, err)
	}
	if _, err := parseKeyConfig("fast"); err == nil {
		t.Fatal("bogus -config accepted")
	}
}

// TestServingConfigFlag boots the flag-configured stack with -config
// serving and verifies the weaker key still serves certified answers.
func TestServingConfigFlag(t *testing.T) {
	srv, reg := startServer(t, config{arities: "4-6", shards: 4, cache: 16, keyConfig: "serving"})
	rng := rand.New(rand.NewSource(702))
	f := tt.Random(5, rng)
	resp, body := post(t, srv.URL+"/v1/insert", service.ClassifyRequest{Functions: []string{f.Hex()}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	variant := npn.RandomTransform(5, rng).Apply(f)
	resp, body = post(t, srv.URL+"/v1/classify", service.ClassifyRequest{Functions: []string{variant.Hex()}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", resp.StatusCode, body)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	if !cls.Results[0].Hit {
		t.Fatal("serving-config store missed an NPN variant")
	}
	svc, err := reg.Service(5)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Store().Config() != store.ServingConfig() {
		t.Fatalf("store config %+v, want ServingConfig", svc.Store().Config())
	}
}

// TestDurableServerRestart is the -data lifecycle across a simulated
// kill: insert over HTTP into a durable flag-configured server, abandon
// the registry without closing (per-append fsync makes every
// acknowledged insert durable), rebuild the stack on the same data
// directory and require every class back with its identity.
func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir()
	// fsyncInterval 0 = fsync every append, the kill-safe mode.
	cfg := config{arities: "4-6", shards: 4, cache: 16, keyConfig: "full",
		dataDir: dir, segmentBytes: 1 << 12}
	srv, _ := startServer(t, cfg)

	rng := rand.New(rand.NewSource(703))
	var hexes []string
	for n := 4; n <= 6; n++ {
		for k := 0; k < 4; k++ {
			hexes = append(hexes, tt.Random(n, rng).Hex())
		}
	}
	resp, body := post(t, srv.URL+"/v1/insert", service.ClassifyRequest{Functions: hexes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	var ins service.InsertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatal(err)
	}
	// SIGKILL: the first server's registry is simply abandoned.

	srv2, _ := startServer(t, cfg)
	resp, body = post(t, srv2.URL+"/v1/classify", service.ClassifyRequest{Functions: hexes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", resp.StatusCode, body)
	}
	var cls service.ClassifyResponse
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("class %d lost across restart", i)
		}
		if r.Class != ins.Results[i].Class || *r.Index != ins.Results[i].Index {
			t.Fatalf("class %d identity changed across restart", i)
		}
	}

	// Admin compaction over HTTP, then a third restart from the snapshot.
	resp, body = post(t, srv2.URL+"/v1/compact", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d: %s", resp.StatusCode, body)
	}
	srv3, _ := startServer(t, cfg)
	resp, body = post(t, srv3.URL+"/v1/classify", service.ClassifyRequest{Functions: hexes[:3]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-compaction classify status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cls); err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit {
			t.Fatalf("class %d lost after compaction restart", i)
		}
	}
}
