package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/federation"
	"repro/internal/replica"
	"repro/internal/tt"
	"repro/pkg/client"
)

// startHardenedServer is startServer for tests that need several
// differently-credentialed clients: it returns the base URL instead of
// one anonymous client.
func startHardenedServer(t *testing.T, cfg config) (string, *federation.Registry) {
	t.Helper()
	reg, err := buildRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hopts, err := cfg.handlerOptions(reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(federation.NewHandlerOpts(reg, hopts))
	t.Cleanup(srv.Close)
	return srv.URL, reg
}

// TestHardenedEdgeEndToEnd is the acceptance scenario for the guarded
// edge, driven through the real flag-configured stack: an abusive key
// exhausts its quota and sees 429 + Retry-After with the stable
// rate_limited code, an in-quota key keeps being served with a bounded
// p99 (read from the server's own latency histogram), anonymous traffic
// is refused with the stable unauthorized code, both codes are published
// by GET /v2/spec, both counters appear on /metrics, and the exempt
// routes answer throughout.
func TestHardenedEdgeEndToEnd(t *testing.T) {
	ctx := context.Background()
	url, _ := startHardenedServer(t, config{
		arities: "4-6", shards: 4, workers: 2, cache: 64, metrics: true,
		keyInline: "abuser:abk:1:2,trusted:tk:1000:100",
	})

	// Anonymous traffic: stable 401 on the API, exempt routes still open.
	anon := client.New(url, client.WithRetries(0))
	_, err := anon.Classify(ctx, []string{"e8"})
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodeUnauthorized {
		t.Fatalf("anonymous classify: %v, want unauthorized api.Error", err)
	}
	if status, _, err := anon.Healthz(ctx); err != nil || status != http.StatusOK {
		t.Fatalf("anonymous /healthz: %d, %v", status, err)
	}
	if _, err := anon.Metrics(ctx); err != nil {
		t.Fatalf("anonymous /metrics: %v", err)
	}

	// The wire contract is discoverable: both codes are in the spec.
	trusted := client.New(url, client.WithAPIKey("tk"))
	spec, err := trusted.Spec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	codes := make(map[string]bool)
	for _, ec := range spec.ErrorCodes {
		codes[ec] = true
	}
	if !codes[string(api.CodeUnauthorized)] || !codes[string(api.CodeRateLimited)] {
		t.Fatalf("spec error codes missing the edge codes: %v", spec.ErrorCodes)
	}

	// The abuser spends its burst of 2, then hits the limiter.
	abuser := client.New(url, client.WithAPIKey("abk"), client.WithRetries(0))
	limited := false
	for i := 0; i < 4; i++ {
		_, err := abuser.Classify(ctx, []string{"e8"})
		if e, ok := err.(*api.Error); ok && e.Code == api.CodeRateLimited {
			limited = true
			break
		}
		if err != nil {
			t.Fatalf("abuser request %d: %v", i, err)
		}
	}
	if !limited {
		t.Fatal("abuser was never rate limited within 4 requests at burst 2")
	}

	// Raw request for the header contract pkg/client does not surface:
	// the 429 names an integer Retry-After of at least one second.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v2/classify",
		strings.NewReader(`{"functions":["e8"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer abk")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained abuser: status %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil ||
		env.Error.Code != api.CodeRateLimited {
		t.Fatalf("429 body: %+v, %v", env.Error, err)
	}

	// The in-quota client is unaffected by its noisy neighbor.
	rng := rand.New(rand.NewSource(808))
	var hexes []string
	for n := 4; n <= 6; n++ {
		for k := 0; k < 4; k++ {
			hexes = append(hexes, tt.Random(n, rng).Hex())
		}
	}
	if _, err := trusted.Insert(ctx, hexes); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := trusted.Classify(ctx, hexes[:4]); err != nil {
			t.Fatalf("trusted classify %d alongside throttled abuser: %v", i, err)
		}
	}

	// The server's own histogram bounds the in-quota experience, and the
	// edge counters account for what the guard refused.
	scrape, err := trusted.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p99 := scrape.Quantile("npn_http_request_duration_seconds", 0.99,
		"route=/v2/classify", "code=2xx"); p99 <= 0 || p99 > 1.0 {
		t.Fatalf("served p99 = %vs, want (0, 1s]", p99)
	}
	if v := scrape.Sum("npn_http_unauthorized_total"); v < 1 {
		t.Fatalf("npn_http_unauthorized_total = %v, want >= 1", v)
	}
	if v := scrape.Sum("npn_http_rate_limited_total"); v < 1 {
		t.Fatalf("npn_http_rate_limited_total = %v, want >= 1", v)
	}
}

// TestLoadSheddingEndToEnd: with -max-inflight 1, concurrent batches
// drive the live worker-pool depth past the limit and the surplus is
// refused with fast 429s — while /healthz keeps answering and the shed
// counter records every refusal.
func TestLoadSheddingEndToEnd(t *testing.T) {
	ctx := context.Background()
	url, _ := startHardenedServer(t, config{
		arities: "6", shards: 4, workers: 1, cache: -1, metrics: true,
		maxInflight: 1,
	})

	// Batches big enough that several are reliably mid-execution at once
	// even on a single-CPU runner — overlap, not speed, is what the test
	// needs.
	rng := rand.New(rand.NewSource(809))
	var hexes []string
	for i := 0; i < 2048; i++ {
		hexes = append(hexes, tt.Random(6, rng).Hex())
	}

	var (
		mu      sync.Mutex
		served  int
		shed    int
		badErrs []error
		wg      sync.WaitGroup
	)
	deadline := time.Now().Add(5 * time.Second)
	for shed == 0 && time.Now().Before(deadline) {
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := client.New(url, client.WithRetries(0))
				_, err := c.Classify(ctx, hexes)
				mu.Lock()
				defer mu.Unlock()
				switch e, ok := err.(*api.Error); {
				case err == nil:
					served++
				case ok && e.Code == api.CodeRateLimited:
					shed++
				default:
					badErrs = append(badErrs, err)
				}
			}()
		}
		wg.Wait()
	}
	if len(badErrs) > 0 {
		t.Fatalf("unexpected errors under overload: %v", badErrs)
	}
	if shed == 0 {
		t.Fatal("no request was shed at -max-inflight 1 under 8-way concurrency")
	}
	if served == 0 {
		t.Fatal("every request was shed: the limit must admit work, not close the server")
	}

	// The probe and the scrape survive the overload they report on.
	hc := client.New(url)
	if status, _, err := hc.Healthz(ctx); err != nil || status != http.StatusOK {
		t.Fatalf("/healthz during shedding: %d, %v", status, err)
	}
	scrape, err := hc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := scrape.Sum("npn_http_shed_total"); v != float64(shed) {
		t.Fatalf("npn_http_shed_total = %v, want %d", v, shed)
	}
	if !scrape.Has("npn_service_inflight_batches") {
		t.Fatal("npn_service_inflight_batches gauge not exported")
	}
}

// TestHardenedFollower: the guard mounts on the follower stack too — the
// same flags lock a replica's edge, with the same exemptions.
func TestHardenedFollower(t *testing.T) {
	ctx := context.Background()
	// WAL shipping needs a durable primary.
	pc, _ := startServer(t, config{arities: "4-6", shards: 4, cache: 16, dataDir: t.TempDir()})
	if _, err := pc.Insert(ctx, []string{"e8e8e8e8e8e8e8e8"}); err != nil {
		t.Fatal(err)
	}

	fcfg := config{arities: "4-6", shards: 4, cache: 16,
		follow: pc.Base(), followMode: "local", followInterval: time.Hour,
		metrics: true, keyInline: "reader:rk:100"}
	fol, err := buildFollower(fcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fopts, err := fcfg.handlerOptions(fol.Registry())
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(replica.NewHandlerOpts(fol, fopts))
	t.Cleanup(fsrv.Close)
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}

	anon := client.New(fsrv.URL, client.WithRetries(0))
	_, err = anon.Classify(ctx, []string{"e8e8e8e8e8e8e8e8"})
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodeUnauthorized {
		t.Fatalf("anonymous follower classify: %v, want unauthorized", err)
	}
	if status, _, err := anon.Healthz(ctx); err != nil || status != http.StatusOK {
		t.Fatalf("anonymous follower /healthz: %d, %v", status, err)
	}

	reader := client.New(fsrv.URL, client.WithAPIKey("rk"))
	cls, err := reader.Classify(ctx, []string{"e8e8e8e8e8e8e8e8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Results) != 1 || !cls.Results[0].Hit {
		t.Fatalf("keyed follower classify: %+v", cls.Results)
	}
}
