package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/tt"
	"repro/pkg/client"
)

// metricsConfig is the durable, metrics-on flag configuration the
// observability end-to-end tests run against.
func metricsConfig(t *testing.T) config {
	return config{arities: "4-6", shards: 4, cache: 16,
		dataDir: t.TempDir(), segmentBytes: 1 << 12,
		metrics: true, slowRequest: time.Minute}
}

// TestMetricsEndToEnd drives real traffic through the flag-configured
// durable stack and scrapes GET /metrics via the typed client helper: the
// exposition must span every layer (service, store, WAL, federation, HTTP,
// runtime) with at least 20 distinct series, and the per-route request
// counter and latency histogram _count must equal the exact number of
// requests the test sent.
func TestMetricsEndToEnd(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, metricsConfig(t))

	rng := rand.New(rand.NewSource(705))
	var hexes []string
	for n := 4; n <= 6; n++ {
		for k := 0; k < 2; k++ {
			hexes = append(hexes, tt.Random(n, rng).Hex())
		}
	}
	if _, err := c.Insert(ctx, hexes); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Classify(ctx, hexes); err != nil {
			t.Fatal(err)
		}
	}

	sc, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Inventory: at least 20 distinct series names, covering every layer.
	names := sc.Names()
	if len(names) < 20 {
		t.Fatalf("exposition carries %d series names, want >= 20: %v", len(names), names)
	}
	for _, prefix := range []string{
		"npn_service_", "npn_store_", "npn_wal_",
		"npn_federation_", "npn_http_", "npn_go_",
	} {
		found := false
		for _, n := range names {
			if strings.HasPrefix(n, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* series in the exposition (names: %v)", prefix, names)
		}
	}

	// Per-route traffic accounting: counter and histogram _count agree
	// with the exact number of requests sent.
	for route, want := range map[string]float64{"/v2/insert": 1, "/v2/classify": 2} {
		labels := []string{"route=" + route, "method=POST", "code=2xx"}
		if got, ok := sc.Value("npn_http_requests_total", labels...); !ok || got != want {
			t.Errorf("npn_http_requests_total{%s} = %v (ok=%v), want %v", route, got, ok, want)
		}
		if got, ok := sc.Value("npn_http_request_duration_seconds_count", labels...); !ok || got != want {
			t.Errorf("duration histogram _count{%s} = %v (ok=%v), want %v", route, got, ok, want)
		}
	}

	// Layer spot checks against known traffic: each arity saw 2 inserted
	// functions looked up twice, durably journaled.
	for n := 4; n <= 6; n++ {
		a := "arity=" + strconv.Itoa(n)
		if got, ok := sc.Value("npn_service_lookups_total", a); !ok || got != 4 {
			t.Errorf("npn_service_lookups_total{%s} = %v (ok=%v), want 4", a, got, ok)
		}
		if got, ok := sc.Value("npn_wal_records_total", a); !ok || got < 1 {
			t.Errorf("npn_wal_records_total{%s} = %v (ok=%v), want >= 1", a, got, ok)
		}
	}
	if sc.Sum("npn_wal_bytes") <= 0 {
		t.Error("npn_wal_bytes is zero on a durable registry that journaled inserts")
	}
	if got, ok := sc.Value("npn_federation_durable"); !ok || got != 1 {
		t.Errorf("npn_federation_durable = %v (ok=%v), want 1", got, ok)
	}
	if got, ok := sc.Value("npn_service_batch_size_count", "op=classify"); !ok || got != 2 {
		t.Errorf("npn_service_batch_size_count{op=classify} per-arity share = %v (ok=%v), want 2", got, ok)
	}

	// The /metrics route is a first-class citizen of the self-description.
	spec, err := c.Spec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rt := range spec.Routes {
		if rt.Method == "GET" && rt.Pattern == "/metrics" {
			found = true
		}
	}
	if !found {
		t.Errorf("/v2/spec does not list GET /metrics: %v", spec.Routes)
	}
}

// TestRequestIDEndToEnd exercises the tracing contract over the wire: a
// caller-supplied X-Request-Id is echoed on the response and stamped into
// per-item batch errors, and an absent one is minted as 16 hex digits.
func TestRequestIDEndToEnd(t *testing.T) {
	c, _ := startServer(t, metricsConfig(t))

	body := []byte(`{"functions":["zzzz","1ee1"]}`)
	req, err := http.NewRequest(http.MethodPost, c.Base()+"/v2/classify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "e2e-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "e2e-req-42" {
		t.Fatalf("response %s = %q, want the caller-supplied id", obs.RequestIDHeader, got)
	}
	var cls api.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cls); err != nil {
		t.Fatal(err)
	}
	if cls.Results[0].Error == nil || cls.Results[0].Error.RequestID != "e2e-req-42" {
		t.Fatalf("per-item error does not carry the request id: %+v", cls.Results[0].Error)
	}
	if cls.Results[1].Error != nil {
		t.Fatalf("good item failed: %+v", cls.Results[1].Error)
	}

	// No caller ID: one is minted, 16 hex digits.
	resp2, err := http.Get(c.Base() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get(obs.RequestIDHeader); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("minted request id %q is not 16 hex digits", id)
	}
}

// TestStatsMetricsParity is the one-source-of-truth check: the JSON stats
// endpoint and the Prometheus exposition are read from the same snapshot
// machinery, so after arbitrary traffic every shared counter must agree
// exactly.
func TestStatsMetricsParity(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, metricsConfig(t))

	rng := rand.New(rand.NewSource(706))
	var hexes []string
	for n := 4; n <= 6; n++ {
		for k := 0; k < 3; k++ {
			hexes = append(hexes, tt.Random(n, rng).Hex())
		}
	}
	if _, err := c.Insert(ctx, hexes); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify(ctx, hexes[:4]); err != nil {
		t.Fatal(err)
	}

	raw, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var st federation.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	sc, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if got, ok := sc.Value("npn_federation_active_arities"); !ok || got != float64(len(st.ActiveArities)) {
		t.Errorf("active arities: metrics %v (ok=%v), stats %d", got, ok, len(st.ActiveArities))
	}
	for _, row := range st.PerArity {
		a := "arity=" + strconv.Itoa(row.Arity)
		for name, want := range map[string]float64{
			"npn_service_lookups_total": float64(row.Lookups),
			"npn_service_inserts_total": float64(row.Inserts),
			"npn_service_hits_total":    float64(row.Hits),
			"npn_store_classes":         float64(row.Classes),
		} {
			if got, ok := sc.Value(name, a); !ok || got != want {
				t.Errorf("%s{%s} = %v (ok=%v), stats say %v", name, a, got, ok, want)
			}
		}
		if row.WAL != nil {
			if got, ok := sc.Value("npn_wal_bytes", a); !ok || got != float64(row.WAL.Bytes) {
				t.Errorf("npn_wal_bytes{%s} = %v (ok=%v), stats say %d", a, got, ok, row.WAL.Bytes)
			}
		}
	}
}

// TestFollowerLagGauges is the replication-lag observability contract:
// after a catch-up sync the lag gauges read zero, the moment the primary
// accepts new inserts a lag refresh turns them nonzero, and the next sync
// returns them to zero — all observed through the follower's /metrics.
func TestFollowerLagGauges(t *testing.T) {
	ctx := context.Background()
	pc, _ := startServer(t, metricsConfig(t))

	rng := rand.New(rand.NewSource(707))
	insert := func(count int) {
		t.Helper()
		var hexes []string
		for n := 4; n <= 6; n++ {
			for k := 0; k < count; k++ {
				hexes = append(hexes, tt.Random(n, rng).Hex())
			}
		}
		if _, err := pc.Insert(ctx, hexes); err != nil {
			t.Fatal(err)
		}
	}
	insert(3)

	fcfg := config{arities: "4-6", shards: 4, cache: 16,
		follow: pc.Base(), followMode: "local", followInterval: time.Hour,
		metrics: true}
	fol, err := buildFollower(fcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fopts, err := fcfg.handlerOptions(fol.Registry())
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(replica.NewHandlerOpts(fol, fopts))
	t.Cleanup(fsrv.Close)
	fc := client.New(fsrv.URL)

	scrapeLag := func() (segments, bytes float64, sc *obs.Scrape) {
		t.Helper()
		sc, err := fc.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return sc.Sum("npn_replica_lag_segments"), sc.Sum("npn_replica_lag_bytes"), sc
	}

	// Caught up: every arity's lag gauge exists and reads zero.
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	segs, bts, sc := scrapeLag()
	if segs != 0 || bts != 0 {
		t.Fatalf("lag after catch-up = (%v segments, %v bytes), want zero", segs, bts)
	}
	for n := 4; n <= 6; n++ {
		a := "arity=" + strconv.Itoa(n)
		if !sc.Has("npn_replica_lag_bytes", a) {
			t.Errorf("no npn_replica_lag_bytes{%s} series after bootstrap", a)
		}
	}
	if got, ok := sc.Value("npn_replica_syncs_total"); !ok || got < 1 {
		t.Errorf("npn_replica_syncs_total = %v (ok=%v), want >= 1", got, ok)
	}
	if got, ok := sc.Value("npn_replica_stale"); !ok || got != 0 {
		t.Errorf("npn_replica_stale = %v (ok=%v), want 0", got, ok)
	}

	// The primary moves ahead: a lag refresh (no tailing) must surface
	// nonzero lag immediately.
	insert(4)
	if err := fol.RefreshLag(ctx); err != nil {
		t.Fatal(err)
	}
	if _, bts, _ := scrapeLag(); bts <= 0 {
		t.Fatalf("lag bytes after primary inserts = %v, want > 0", bts)
	}

	// The next sync catches back up and the gauges return to zero.
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if segs, bts, _ := scrapeLag(); segs != 0 || bts != 0 {
		t.Fatalf("lag after re-sync = (%v segments, %v bytes), want zero", segs, bts)
	}
}

// TestMetricsOffByConfig: with the metrics flag off the stack mounts no
// /metrics route and stamps no request IDs — the observability surface is
// strippable.
func TestMetricsOffByConfig(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t, config{arities: "4-6", shards: 4, cache: 16})

	if _, err := c.Metrics(ctx); err == nil {
		t.Fatal("GET /metrics served without -metrics")
	} else if e, ok := err.(*api.Error); !ok || e.Code != api.CodeNotFound {
		t.Fatalf("metrics-off error = %v, want not_found", err)
	}
	resp, err := http.Get(c.Base() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(obs.RequestIDHeader); id != "" {
		t.Fatalf("request id %q stamped without -metrics", id)
	}
}

// TestSlowRequestCounter: a threshold lower than any real request turns
// every request into a slow one — the counter and the route label must
// reflect it.
func TestSlowRequestCounter(t *testing.T) {
	ctx := context.Background()
	cfg := metricsConfig(t)
	cfg.slowRequest = time.Nanosecond
	c, _ := startServer(t, cfg)

	if _, err := c.Classify(ctx, []string{"1ee1"}); err != nil {
		t.Fatal(err)
	}
	sc, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := sc.Value("npn_http_slow_requests_total", "route=/v2/classify"); !ok || got != 1 {
		t.Fatalf("npn_http_slow_requests_total{route=/v2/classify} = %v (ok=%v), want 1", got, ok)
	}
}
