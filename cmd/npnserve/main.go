// Command npnserve runs the NPN classification service: a sharded,
// concurrency-safe class store (internal/store) behind the batch HTTP/JSON
// API of internal/service.
//
// Usage:
//
//	npnserve -n 6 [-addr :8080] [-shards 16] [-workers 0] [-cache 4096]
//	         [-load file] [-save file]
//
// Endpoints:
//
//	POST /v1/classify  {"functions":["<hex tt>", ...]} -> class keys, reps,
//	                   matcher-certified witnesses (read-only)
//	POST /v1/insert    same body; absent classes are created
//	GET  /v1/stats     counters and store shape
//	GET  /healthz      liveness
//
// With -load, the store is preseeded from a ttio snapshot (one hex table
// per line, e.g. a classdb/store Save file). With -save, a snapshot is
// written on graceful shutdown (SIGINT/SIGTERM).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
)

// config collects the flag-configurable server parameters.
type config struct {
	n        int
	addr     string
	shards   int
	workers  int
	cache    int
	loadPath string
	savePath string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 0, "number of variables (required)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.shards, "shards", store.DefaultShards, "store lock shards (rounded up to a power of two)")
	flag.IntVar(&cfg.workers, "workers", 0, "batch worker pool width (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.cache, "cache", service.DefaultCacheSize, "LRU result cache capacity (negative disables)")
	flag.StringVar(&cfg.loadPath, "load", "", "preseed the store from a ttio snapshot file")
	flag.StringVar(&cfg.savePath, "save", "", "write a store snapshot to this file on shutdown")
	flag.Parse()

	logger := log.New(os.Stderr, "npnserve: ", log.LstdFlags)
	svc, err := buildService(cfg)
	if err != nil {
		logger.Fatal(err)
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving n=%d on %s (shards=%d workers=%d cache=%d, %d classes preloaded)",
			cfg.n, cfg.addr, svc.Store().NumShards(), svc.Stats().Workers, cfg.cache, svc.Store().Size())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests.
	logger.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
	}

	if cfg.savePath != "" {
		if err := saveSnapshot(svc, cfg.savePath); err != nil {
			logger.Fatalf("save: %v", err)
		}
		logger.Printf("saved %d classes to %s", svc.Store().Size(), cfg.savePath)
	}
}

// buildService wires a store and service from the flag configuration. It
// is the unit the end-to-end tests exercise against httptest.
func buildService(cfg config) (*service.Service, error) {
	if cfg.n <= 0 || cfg.n > tt.MaxVars {
		return nil, fmt.Errorf("-n must be in 1..%d", tt.MaxVars)
	}
	var st *store.Store
	if cfg.loadPath != "" {
		f, err := os.Open(cfg.loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		st, err = store.Load(f, cfg.n, store.Options{Shards: cfg.shards})
		if err != nil {
			return nil, err
		}
	} else {
		st = store.New(cfg.n, store.Options{Shards: cfg.shards})
	}
	return service.New(st, service.Options{Workers: cfg.workers, CacheSize: cfg.cache}), nil
}

// saveSnapshot writes the store's classes as a ttio workload file.
func saveSnapshot(svc *service.Service, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := svc.Store().Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
