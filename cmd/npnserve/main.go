// Command npnserve runs the federated NPN classification service: one
// sharded, concurrency-safe class store (internal/store) per arity in a
// configurable range, behind the mixed-arity batch HTTP/JSON API of
// internal/federation.
//
// Usage:
//
//	npnserve [-arities 4-10] [-addr :8080] [-shards 16] [-workers 0]
//	         [-cache 4096] [-config full|serving] [-max-body N]
//	         [-data dir] [-fsync-interval 100ms] [-segment-bytes N]
//	         [-compact-every 0] [-follow URL] [-follow-mode proxy|local]
//	         [-follow-interval 200ms] [-stale-after 0]
//	         [-metrics] [-slow-request 500ms] [-pprof-addr addr]
//	         [-trace] [-trace-buffer 256] [-trace-sample 0.01]
//	         [-keys file] [-key name:secret[:rps[:burst]],...]
//	         [-anon-rps N] [-anon-burst N] [-max-inflight N]
//	         [-trusted-proxies CIDR[,CIDR]]
//
// Endpoints (the /v2 surface of internal/api; see GET /v2/spec for the
// machine-readable list and README for the full reference):
//
//	POST /v2/classify  {"functions":["<hex tt>", ...]} -> class keys, reps,
//	                   matcher-certified witnesses (read-only). Batches may
//	                   mix arities: each function's arity is inferred from
//	                   its hex length and routed to that arity's store. A
//	                   bad function fails only its own item: the response
//	                   carries per-item {"error":{"code",...}} objects.
//	POST /v2/insert    same body; absent classes are created
//	POST /v2/classify/stream, POST /v2/insert/stream
//	                   NDJSON variants (one hex function per line in, one
//	                   result object per line out) for batches too large
//	                   to buffer
//	POST /v2/map       ASCII-AIGER circuit body (+ ?k=6&mode=depth&cuts=8)
//	                   -> functionally-verified k-LUT mapping with its NPN
//	                   class census; ?insert=true warms the store with the
//	                   discovered LUT classes
//	POST /v2/compact   admin: fold sealed WAL segments into snapshots
//	GET  /v2/stats     aggregate totals and a per-arity breakdown
//	GET  /v2/spec      self-description: routes + error codes
//	GET  /healthz      liveness + federated range
//	GET  /metrics      Prometheus text exposition (with -metrics, default)
//
// The /v1 endpoints (classify, insert, compact, stats) remain mounted as
// deprecated byte-compatible shims; unmatched routes and methods answer
// the /v2 JSON error envelope. -max-body bounds the AIGER upload and
// NDJSON stream bodies in bytes.
//
// -arities accepts a single arity ("6") or an inclusive range ("4-10");
// per-arity stores are constructed lazily on first use. -config selects
// the MSV key: "full" (the paper's complete vector set) or "serving"
// (cheap OCV1+OIV keys for the profile-cached serve path).
//
// With -data the server is durable: each arity keeps a write-ahead log
// plus snapshot under <data>/n<arity>/ (internal/wal), every certified
// new-class insert is logged before it is served, and a restart — clean
// or kill -9 — recovers every fsynced class. -fsync-interval bounds the
// crash-loss window (0 fsyncs every append), -segment-bytes sets the log
// rotation threshold, and -compact-every runs background compaction
// (0 leaves compaction to POST /v1/compact).
//
// With -follow the server is a replication follower instead: a read-only
// replica that bootstraps from the primary's latest snapshot, tails its
// WAL segments over HTTP (internal/replica) and serves classify hits from
// the local replicated stores. -follow-mode picks what happens beyond
// them: "proxy" (default) forwards classify misses and every insert to
// the primary, "local" answers misses as misses and refuses inserts.
// -follow-interval is the tail poll period; -stale-after, when set, makes
// /healthz answer 503 once the last successful sync is older than the
// given duration (load-balancer draining), while classify keeps serving
// the replicated classes — a follower outlives its primary for reads.
// Followers are memory-only: -data, -load and -save are rejected.
//
// The pre-durability flags remain as deprecated aliases: -load preseeds
// stores from per-arity n<arity>.tt snapshot files, -save writes them on
// graceful shutdown. Prefer -data, which subsumes both and survives
// crashes.
//
// Observability (internal/obs, on by default): -metrics mounts GET
// /metrics with counters, gauges and latency histograms from every layer
// (service, store, WAL, federation, replication), installs the request
// middleware — every response carries an X-Request-Id (caller-supplied
// IDs are honored and echoed, and stamped into per-item batch errors) —
// and logs any request slower than -slow-request as a structured line
// keyed by that ID (0 disables the log). -metrics=false strips all of it.
// -pprof-addr serves net/http/pprof on a second, private listener (e.g.
// "localhost:6060"); it is opt-in and never shares the API address.
//
// Request tracing (with -metrics): -trace roots a span timeline under
// every request's X-Request-Id — per-stage spans through auth, the
// service pipeline, the store, the WAL and the replica proxy hop — and
// keeps a bounded flight recorder of -trace-buffer traces with
// tail-based sampling: error responses and requests slower than
// -slow-request are always retained, the rest at probability
// -trace-sample. Guard rejections (401/429) are the exception — an
// unauthenticated client mints those for free, so they only qualify
// as slow or sampled and can never flush the ring. Retained traces are served from GET /v2/debug/traces
// (newest first, ?min_ms= and ?route= filters) and
// GET /v2/debug/traces/{id} (the full span tree); on a keyed edge both
// require an API key like any route — trace details name client
// identities — but are never rate-limited or shed, so operators can
// read them mid-overload. A follower in proxy mode stamps
// X-Trace-Parent onto forwarded requests, so the primary's trace
// records which remote span fathered it.
//
// Untrusted-traffic hardening (internal/auth; see README "Hardening"):
// -keys/-key mount an API keyring — requests must then carry
// "Authorization: Bearer <secret>" and are rate-limited per key by the
// key's own rps/burst quota (401 unauthorized / 429 rate_limited with
// Retry-After otherwise). -anon-rps grants keyless requests a per-remote-
// IP rate instead of a flat 401. -max-inflight sheds load with fast 429s
// while that many batches are executing across the worker pools, keeping
// overload from becoming queueing collapse. /healthz and /metrics stay
// exempt so probes and scrapes survive exactly those events. With none of
// these flags the edge is wide open, as before. -trusted-proxies names
// the load balancers (comma-separated CIDRs or bare IPs) whose
// X-Forwarded-For the anonymous limiter may believe: only when the TCP
// peer is in the list does the rightmost non-trusted hop become the
// client identity, so an untrusted client can never spoof its way to a
// fresh rate bucket. SIGHUP re-reads -keys and swaps the keyring in
// place — keys rotate without dropping a connection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
	"repro/internal/ttio"
	"repro/internal/wal"
)

// config collects the flag-configurable server parameters.
type config struct {
	arities       string
	addr          string
	shards        int
	workers       int
	cache         int
	keyConfig     string
	maxBody       int64
	dataDir       string
	fsyncInterval time.Duration
	segmentBytes  int64
	compactEvery  time.Duration
	loadPath      string
	savePath      string

	// Follower mode.
	follow         string
	followMode     string
	followInterval time.Duration
	staleAfter     time.Duration

	// Observability.
	metrics     bool
	slowRequest time.Duration
	pprofAddr   string
	trace       bool
	traceBuffer int
	traceSample float64

	// Untrusted-traffic hardening (internal/auth).
	keysFile       string
	keyInline      string
	anonRPS        float64
	anonBurst      int
	maxInflight    int64
	trustedProxies string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.arities, "arities", "4-10", "federated arity range, \"N\" or \"LO-HI\" inclusive")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.shards, "shards", store.DefaultShards, "per-arity store lock shards (rounded up to a power of two)")
	flag.IntVar(&cfg.workers, "workers", 0, "per-arity batch worker pool width (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.cache, "cache", service.DefaultCacheSize, "per-arity LRU result cache capacity (negative disables)")
	flag.StringVar(&cfg.keyConfig, "config", "full", "MSV key configuration: \"full\" or \"serving\" (cheap OCV1+OIV keys)")
	flag.Int64Var(&cfg.maxBody, "max-body", api.DefaultMaxBody, "byte bound on /v2/map circuit uploads and NDJSON stream bodies")
	flag.StringVar(&cfg.dataDir, "data", "", "durable data directory: per-arity WAL + snapshot under n<arity>/ (empty = memory only)")
	flag.DurationVar(&cfg.fsyncInterval, "fsync-interval", 100*time.Millisecond, "WAL group-fsync interval; 0 fsyncs every append (with -data)")
	flag.Int64Var(&cfg.segmentBytes, "segment-bytes", wal.DefaultSegmentBytes, "WAL segment rotation threshold in bytes (with -data)")
	flag.DurationVar(&cfg.compactEvery, "compact-every", 0, "background WAL compaction period; 0 disables (with -data)")
	flag.StringVar(&cfg.loadPath, "load", "", "deprecated (use -data): preseed stores from per-arity n<arity>.tt snapshots in this directory")
	flag.StringVar(&cfg.savePath, "save", "", "deprecated (use -data): write per-arity snapshots to this directory on graceful shutdown")
	flag.StringVar(&cfg.follow, "follow", "", "run as a read-only replication follower of this primary base URL")
	flag.StringVar(&cfg.followMode, "follow-mode", "proxy", "follower miss/insert handling: \"proxy\" (forward to primary) or \"local\" (serve misses, refuse inserts)")
	flag.DurationVar(&cfg.followInterval, "follow-interval", replica.DefaultInterval, "follower WAL tail poll period (with -follow)")
	flag.DurationVar(&cfg.staleAfter, "stale-after", 0, "follower staleness gate: /healthz answers 503 once the last sync is older than this; 0 disables (with -follow)")
	flag.BoolVar(&cfg.metrics, "metrics", true, "serve GET /metrics (Prometheus text) and trace requests with X-Request-Id")
	flag.DurationVar(&cfg.slowRequest, "slow-request", 500*time.Millisecond, "log requests slower than this as structured slow-request lines; 0 disables (with -metrics)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate private address (e.g. localhost:6060); empty disables")
	flag.BoolVar(&cfg.trace, "trace", false, "record per-request span timelines into a flight recorder at GET /v2/debug/traces (with -metrics)")
	flag.IntVar(&cfg.traceBuffer, "trace-buffer", obs.DefaultTraceBuffer, "flight-recorder capacity in retained traces (with -trace)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0.01, "probability of retaining a fast, successful trace; errors and slow requests are always kept (with -trace)")
	flag.StringVar(&cfg.keysFile, "keys", "", "API key file: one name:secret[:rps[:burst]] per line (# comments); enables Bearer auth")
	flag.StringVar(&cfg.keyInline, "key", "", "inline API key spec(s), comma-separated name:secret[:rps[:burst]]; merged with -keys")
	flag.Float64Var(&cfg.anonRPS, "anon-rps", 0, "per-client (per remote IP) rate for requests without an API key; with keys configured, 0 rejects anonymous traffic (401); without keys, 0 disables anonymous limiting")
	flag.IntVar(&cfg.anonBurst, "anon-burst", 0, "anonymous token-bucket depth (0 derives from -anon-rps)")
	flag.Int64Var(&cfg.maxInflight, "max-inflight", 0, "shed load (429 + Retry-After) while this many batches are in flight across the worker pools; 0 disables")
	flag.StringVar(&cfg.trustedProxies, "trusted-proxies", "", "comma-separated CIDRs (or bare IPs) of load balancers whose X-Forwarded-For the anonymous limiter may believe")
	flag.Parse()

	logger := log.New(os.Stderr, "npnserve: ", log.LstdFlags)
	if cfg.loadPath != "" {
		logger.Print("-load is deprecated: prefer -data, which also survives crashes")
	}
	if cfg.savePath != "" {
		logger.Print("-save is deprecated: prefer -data, which also survives crashes")
	}

	var (
		reg      *federation.Registry
		follower *replica.Follower
		handler  http.Handler
	)
	if cfg.follow != "" {
		f, err := buildFollower(cfg, logger)
		if err != nil {
			logger.Fatal(err)
		}
		follower, reg = f, f.Registry()
	} else {
		r, err := buildRegistry(cfg)
		if err != nil {
			logger.Fatal(err)
		}
		reg = r
	}
	// The handler options come after the registry: the load shedder reads
	// its live worker-pool depth.
	hopts, keyring, err := cfg.handlerOptionsKeyring(reg)
	if err != nil {
		logger.Fatal(err)
	}
	if follower != nil {
		handler = replica.NewHandlerOpts(follower, hopts)
	} else {
		handler = federation.NewHandlerOpts(reg, hopts)
		if cfg.loadPath != "" {
			loaded, err := loadSnapshots(reg, cfg.loadPath)
			if err != nil {
				logger.Fatalf("load: %v", err)
			}
			logger.Printf("preseeded %d classes from %s (arities %v)", loaded, cfg.loadPath, reg.Active())
		}
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// pprof lives on its own listener so profiling stays private even when
	// the API address is exposed; losing it never takes the API down.
	if cfg.pprofAddr != "" {
		go func() {
			logger.Printf("pprof on http://%s/debug/pprof/", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, pprofMux()); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if keyring != nil {
		go watchKeyringReload(ctx, keyring, cfg, logger)
	}

	if follower != nil {
		go follower.Run(ctx)
	}

	stopCompact := func() {}
	if reg.Durable() && cfg.compactEvery > 0 {
		stopCompact = reg.StartAutoCompact(cfg.compactEvery, func(err error) {
			logger.Printf("compact: %v", err)
		})
		logger.Printf("background compaction every %s", cfg.compactEvery)
	}

	errc := make(chan error, 1)
	go func() {
		mode := "memory-only"
		switch {
		case follower != nil:
			mode = fmt.Sprintf("follower of %s mode=%s poll=%s stale-after=%s",
				cfg.follow, follower.Mode(), cfg.followInterval, cfg.staleAfter)
		case reg.Durable():
			mode = fmt.Sprintf("durable data=%s fsync=%s segment=%dB", cfg.dataDir, cfg.fsyncInterval, cfg.segmentBytes)
		}
		logger.Printf("serving arities %d..%d on %s (shards=%d workers=%d cache=%d config=%s per arity; %s)",
			reg.MinVars(), reg.MaxVars(), cfg.addr, cfg.shards, cfg.workers, cfg.cache, cfg.keyConfig, mode)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests.
	logger.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
	}

	// Stop the compaction ticker before closing the writers it seals.
	stopCompact()
	if reg.Durable() {
		if err := reg.Close(); err != nil {
			logger.Printf("wal close: %v", err)
		} else {
			logger.Print("wal flushed and closed")
		}
	}

	if cfg.savePath != "" {
		saved, err := saveSnapshots(reg, cfg.savePath)
		if err != nil {
			logger.Fatalf("save: %v", err)
		}
		logger.Printf("saved %d classes to %s (arities %v)", saved, cfg.savePath, reg.Active())
	}
}

// bodyBound returns the -max-body value, with zero and negatives (and
// the zero config value the tests construct) falling back to the
// default.
func (c config) bodyBound() int64 {
	if c.maxBody <= 0 {
		return api.DefaultMaxBody
	}
	return c.maxBody
}

// handlerOptions assembles the observability and admission-control
// surface both server roles share: with -metrics a fresh obs registry
// (plus the Go runtime collectors) and the request middleware with the
// -slow-request threshold, and with any hardening flag (-keys, -key,
// -anon-rps, -max-inflight) the auth guard wired to reg's live
// worker-pool depth. The same options value feeds
// federation.NewHandlerOpts and replica.NewHandlerOpts, so primary and
// follower expose the identical metric and admission surface.
func (c config) handlerOptions(reg *federation.Registry) (federation.HandlerOptions, error) {
	o, _, err := c.handlerOptionsKeyring(reg)
	return o, err
}

// handlerOptionsKeyring is handlerOptions plus the live keyring the
// guard authenticates against, so main can swap it in place on SIGHUP.
// The keyring is nil when no keys are configured.
func (c config) handlerOptionsKeyring(reg *federation.Registry) (federation.HandlerOptions, *auth.Keyring, error) {
	o := federation.HandlerOptions{MaxBody: c.bodyBound()}
	if c.metrics {
		m := obs.NewRegistry()
		obs.RegisterRuntime(m)
		o.Metrics = m
		httpOpts := obs.HTTPOptions{SlowRequest: c.slowRequest}
		if c.trace {
			t := obs.NewTracer(m, obs.TraceOptions{
				Buffer: c.traceBuffer,
				Sample: c.traceSample,
				Slow:   c.slowRequest,
			})
			o.Trace = t
			httpOpts.Tracer = t
		}
		o.HTTP = obs.NewHTTPMetrics(m, httpOpts)
	}
	guard, kr, err := c.buildGuard(reg, o.Metrics)
	if err != nil {
		return o, nil, err
	}
	if guard != nil {
		o.Guard = guard.Wrap
	}
	return o, kr, nil
}

// watchKeyringReload swaps the guard's keyring in place on SIGHUP by
// re-reading the -keys file (and re-parsing -key): key rotation without
// dropping a connection. A reload that fails to parse keeps the
// previous keyring serving — a bad edit never locks every caller out.
func watchKeyringReload(ctx context.Context, kr *auth.Keyring, cfg config, logger *log.Logger) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			if err := reloadKeyring(kr, cfg); err != nil {
				logger.Printf("keyring reload: %v (previous keyring stays active)", err)
				continue
			}
			logger.Printf("keyring reloaded (%d keys)", kr.Len())
		}
	}
}

// reloadKeyring re-reads the key flags into a fresh keyring and swaps
// it into kr. An empty result is refused: deleting the key file must
// not silently turn authentication off.
func reloadKeyring(kr *auth.Keyring, cfg config) error {
	next, err := auth.LoadKeyring(cfg.keysFile, cfg.keyInline)
	if err != nil {
		return err
	}
	if next == nil || next.Len() == 0 {
		return errors.New("reload produced an empty keyring")
	}
	kr.Swap(next)
	return nil
}

// buildGuard constructs the admission-control middleware from the
// hardening flags, or returns nil when none is set — an unguarded server
// behaves exactly as before.
func (c config) buildGuard(reg *federation.Registry, m *obs.Registry) (*auth.Guard, *auth.Keyring, error) {
	kr, err := auth.LoadKeyring(c.keysFile, c.keyInline)
	if err != nil {
		return nil, nil, err
	}
	if c.anonRPS < 0 {
		return nil, nil, fmt.Errorf("-anon-rps %v: must be >= 0", c.anonRPS)
	}
	proxies, err := auth.ParseProxyList(c.trustedProxies)
	if err != nil {
		return nil, nil, fmt.Errorf("-trusted-proxies: %w", err)
	}
	if kr == nil && c.anonRPS == 0 && c.maxInflight <= 0 {
		return nil, nil, nil
	}
	opts := auth.Options{
		Keys:           kr,
		AnonRPS:        c.anonRPS,
		AnonBurst:      c.anonBurst,
		Metrics:        m,
		TrustedProxies: proxies,
	}
	if c.maxInflight > 0 {
		limit := c.maxInflight
		opts.Pressure = func() (int64, int64) { return reg.InflightBatches(), limit }
	}
	return auth.NewGuard(opts), kr, nil
}

// pprofMux mounts the net/http/pprof handlers on a private mux — the
// package's init-time registration on DefaultServeMux is deliberately not
// used, so nothing pprof-shaped can ever leak onto the API listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// parseArities parses the -arities value: "6" or "4-10", both inclusive.
func parseArities(s string) (lo, hi int, err error) {
	part := strings.SplitN(s, "-", 2)
	lo, err = strconv.Atoi(strings.TrimSpace(part[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("-arities %q: %w", s, err)
	}
	hi = lo
	if len(part) == 2 {
		hi, err = strconv.Atoi(strings.TrimSpace(part[1]))
		if err != nil {
			return 0, 0, fmt.Errorf("-arities %q: %w", s, err)
		}
	}
	if lo < federation.MinFederatedArity || hi > tt.MaxVars || lo > hi {
		return 0, 0, fmt.Errorf("-arities %q: range must satisfy %d <= lo <= hi <= %d",
			s, federation.MinFederatedArity, tt.MaxVars)
	}
	return lo, hi, nil
}

// parseKeyConfig maps the -config value to an MSV configuration: the
// zero core.Config means the store's default full vector set.
func parseKeyConfig(s string) (core.Config, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "full":
		return core.Config{}, nil
	case "serving":
		return store.ServingConfig(), nil
	}
	return core.Config{}, fmt.Errorf("-config %q: want \"full\" or \"serving\"", s)
}

// buildRegistry wires the federated registry from the flag configuration.
// It is the unit the end-to-end tests exercise against httptest.
func buildRegistry(cfg config) (*federation.Registry, error) {
	lo, hi, err := parseArities(cfg.arities)
	if err != nil {
		return nil, err
	}
	keyCfg, err := parseKeyConfig(cfg.keyConfig)
	if err != nil {
		return nil, err
	}
	return federation.New(lo, hi, federation.Options{
		Store:   store.Options{Shards: cfg.shards, Config: keyCfg},
		Service: service.Options{Workers: cfg.workers, CacheSize: cfg.cache},
		Data:    cfg.dataDir,
		WAL:     wal.Options{SegmentBytes: cfg.segmentBytes, FsyncEvery: cfg.fsyncInterval},
	})
}

// buildFollower wires the replication-follower stack from the flag
// configuration: a memory-only registry of read-only stores plus the
// tail loop against the -follow primary. Followers hold no WAL of their
// own (they re-sync from the primary on restart), so the durability and
// snapshot flags are rejected.
func buildFollower(cfg config, logger *log.Logger) (*replica.Follower, error) {
	if cfg.dataDir != "" || cfg.loadPath != "" || cfg.savePath != "" {
		return nil, errors.New("-follow runs a memory-only replica: remove -data/-load/-save")
	}
	lo, hi, err := parseArities(cfg.arities)
	if err != nil {
		return nil, err
	}
	keyCfg, err := parseKeyConfig(cfg.keyConfig)
	if err != nil {
		return nil, err
	}
	mode, err := replica.ParseMode(cfg.followMode)
	if err != nil {
		return nil, fmt.Errorf("-follow-mode: %w", err)
	}
	reg, err := federation.New(lo, hi, federation.Options{
		Store:   store.Options{Shards: cfg.shards, Config: keyCfg, ReadOnly: true},
		Service: service.Options{Workers: cfg.workers, CacheSize: cfg.cache},
	})
	if err != nil {
		return nil, err
	}
	var logf func(string, ...any)
	if logger != nil {
		logf = logger.Printf
	}
	return replica.New(reg, replica.Options{
		Primary:    strings.TrimRight(cfg.follow, "/"),
		Interval:   cfg.followInterval,
		Mode:       mode,
		StaleAfter: cfg.staleAfter,
		Logf:       logf,
	}), nil
}

// snapshotFile names arity n's snapshot within a -load/-save directory.
func snapshotFile(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("n%d.tt", n))
}

// loadSnapshots preseeds every arity whose snapshot file exists in dir,
// returning the number of classes created. The directory itself must
// exist — a mistyped -load path fails the start instead of silently
// serving an empty store. Functions are added straight to each arity's
// store, not through the service pipeline, so the serving counters still
// read zero after a restart.
func loadSnapshots(reg *federation.Registry, dir string) (int, error) {
	if _, err := os.Stat(dir); err != nil {
		return 0, err
	}
	total := 0
	for n := reg.MinVars(); n <= reg.MaxVars(); n++ {
		path := snapshotFile(dir, n)
		f, err := os.Open(path)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return total, err
		}
		fs, err := ttio.Read(f, n)
		f.Close()
		if err != nil {
			return total, fmt.Errorf("%s: %w", path, err)
		}
		svc, err := reg.Service(n)
		if err != nil {
			return total, err
		}
		for _, fn := range fs {
			if _, _, isNew := svc.Store().Add(fn); isNew {
				total++
			}
		}
	}
	return total, nil
}

// saveSnapshots writes one snapshot per non-empty arity into dir (created
// if missing), returning the number of classes saved. Every other
// n<arity>.tt file in the directory — empty arities of this run, and
// arities left over from a run with a different -arities range — is
// removed, so reusing a directory across runs cannot resurrect a previous
// run's classes on the next -load.
func saveSnapshots(reg *federation.Registry, dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	saved := make(map[string]bool)
	total := 0
	for _, n := range reg.Active() {
		svc, err := reg.Service(n)
		if err != nil {
			return total, err
		}
		if svc.Store().Size() == 0 {
			continue
		}
		path := snapshotFile(dir, n)
		f, err := os.Create(path)
		if err != nil {
			return total, err
		}
		if err := svc.Store().Save(f); err != nil {
			f.Close()
			return total, err
		}
		if err := f.Close(); err != nil {
			return total, err
		}
		saved[filepath.Base(path)] = true
		total += svc.Store().Size()
	}
	stale, err := filepath.Glob(filepath.Join(dir, "n*.tt"))
	if err != nil {
		return total, err
	}
	for _, path := range stale {
		base := filepath.Base(path)
		if saved[base] || !snapshotName.MatchString(base) {
			continue
		}
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return total, err
		}
	}
	return total, nil
}

// snapshotName matches the per-arity snapshot files saveSnapshots owns.
var snapshotName = regexp.MustCompile(`^n[0-9]+\.tt$`)
