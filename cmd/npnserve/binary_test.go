package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/tt"
	"repro/pkg/client"
)

// TestBinaryTransportEndToEnd drives the length-framed binary transport
// through the full flag-configured server: classes inserted over the
// auto-negotiating client are looked up with a raw binary exchange, the
// witness in the frame certifies locally, the response mirrors the
// request's CRC choice, and an unserved arity inside a valid frame stays
// a per-item error.
func TestBinaryTransportEndToEnd(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	c, _ := startServer(t, config{arities: "4-8", shards: 4, workers: 2, cache: 64})

	var fs []*tt.TT
	var hexes []string
	for n := 4; n <= 8; n++ {
		f := tt.Random(n, rng)
		fs = append(fs, f)
		hexes = append(hexes, f.Hex())
	}
	ins, err := c.Insert(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}

	// Disguise each function with a random NPN transform, then ask over a
	// raw CRC-carrying binary exchange.
	var queries []*tt.TT
	for _, f := range fs {
		queries = append(queries, randomTransformed(rng, f))
	}
	frame := api.EncodeBinaryRequest(queries, true)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base()+"/v2/classify", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", api.BinaryContentType)
	req.Header.Set("Accept", api.BinaryContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != api.BinaryContentType {
		t.Fatalf("status %d content-type %q: %s", resp.StatusCode, resp.Header.Get("Content-Type"), buf.Bytes())
	}
	body := buf.Bytes()
	if body[3]&1 == 0 {
		t.Fatal("response frame does not mirror the request CRC flag")
	}
	items, err := api.DecodeBinaryClassify(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(queries) {
		t.Fatalf("%d items, want %d", len(items), len(queries))
	}
	for i, it := range items {
		if it.Err != nil || !it.Hit {
			t.Fatalf("item %d: %+v", i, it)
		}
		if api.KeyHex(it.Key) != ins.Results[i].Class {
			t.Fatalf("item %d: class %s, want %s", i, api.KeyHex(it.Key), ins.Results[i].Class)
		}
		// The frame's witness certifies against the frame's representative.
		if !it.Witness.Apply(it.Rep).Equal(queries[i]) {
			t.Fatalf("item %d: witness does not certify", i)
		}
	}

	// An arity outside -arities (n=3 against 4-8) fails only its item.
	mixed := []*tt.TT{queries[0], tt.Random(3, rng)}
	frame = api.EncodeBinaryRequest(mixed, false)
	status, raw, err := c.Post(ctx, "/v2/classify", api.BinaryContentType, frame)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("mixed-arity frame: status %d: %s", status, raw)
	}
	// No Accept header on the escape hatch: binary in, JSON out.
	var cls api.ClassifyResponse
	if err := json.Unmarshal(raw, &cls); err != nil {
		t.Fatal(err)
	}
	if cls.Errors != 1 || cls.Results[0].Error != nil || cls.Results[1].Error == nil ||
		cls.Results[1].Error.Code != api.CodeArityOutOfRange {
		t.Fatalf("mixed-arity items: %+v", cls.Results)
	}
	if cls.Results[0].Function != queries[0].Hex() {
		t.Fatalf("binary-in/JSON-out echo %q, want canonical hex %q", cls.Results[0].Function, queries[0].Hex())
	}

	// The auto-negotiating client agrees with the raw exchange end to end.
	var qh []string
	for _, q := range queries {
		qh = append(qh, q.Hex())
	}
	ccls, err := c.Classify(ctx, qh)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ccls.Results {
		if !r.Hit || r.Class != ins.Results[i].Class {
			t.Fatalf("client item %d: %+v", i, r)
		}
		if err := client.ReplayWitness(r); err != nil {
			t.Fatal(err)
		}
	}
}
