// Command npnexact computes the exact NPN classification of truth tables —
// exhaustive canonicalization for n ≤ 6, signature-bucketed pairwise
// matching beyond (the ground-truth column of the paper's tables). Input is
// one hexadecimal truth table per line, as produced by npngen.
//
// Usage:
//
//	npnexact -n 7 [-in file] [-canon] [-witness]
//
// -canon prints each function's canonical form (n ≤ 6); -witness prints a
// transform carrying the class representative into each member.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/tt"
	"repro/internal/ttio"
)

func main() {
	var (
		n       = flag.Int("n", 0, "number of variables (required)")
		inPath  = flag.String("in", "", "input file (default stdin)")
		canon   = flag.Bool("canon", false, "print canonical forms (n ≤ 6)")
		witness = flag.Bool("witness", false, "print witness transforms per member")
	)
	flag.Parse()
	if *n <= 0 || *n > tt.MaxVars {
		fmt.Fprintf(os.Stderr, "npnexact: -n must be in 1..%d\n", tt.MaxVars)
		os.Exit(2)
	}

	in := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npnexact:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	fs, err := ttio.Read(in, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npnexact:", err)
		os.Exit(1)
	}

	start := time.Now()
	res := match.ExactClassify(fs)
	elapsed := time.Since(start)
	fmt.Printf("functions: %d\n", len(fs))
	fmt.Printf("classes:   %d (exact)\n", res.NumClasses)
	fmt.Printf("time:      %.4fs (pairwise comparisons: %d)\n", elapsed.Seconds(), res.Comparisons)

	if *canon {
		if *n > npn.MaxExactVars {
			fmt.Fprintln(os.Stderr, "npnexact: -canon requires n ≤ 6")
			os.Exit(2)
		}
		for _, f := range fs {
			fmt.Printf("%s -> %s\n", f.Hex(), npn.ExactCanon(f).Hex())
		}
	}

	if *witness {
		reps := make(map[int]*tt.TT)
		m := match.NewMatcher(*n)
		for i, f := range fs {
			id := res.ClassOf[i]
			rep, ok := reps[id]
			if !ok {
				reps[id] = f
				fmt.Printf("%s class %d (representative)\n", f.Hex(), id)
				continue
			}
			tr, ok := m.Equivalent(rep, f)
			if !ok {
				fmt.Fprintf(os.Stderr, "npnexact: internal error: class %d member without witness\n", id)
				os.Exit(1)
			}
			fmt.Printf("%s class %d via %v\n", f.Hex(), id, tr)
		}
	}
}
