// npnlint is the repo's domain-aware lint driver: five analyzers that
// machine-check serving invariants generic linters cannot express (see
// the package comment on internal/lint and docs/DEVELOPMENT.md).
//
// Usage:
//
//	go run ./cmd/npnlint ./...
//	go run ./cmd/npnlint -only metricsdrift ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"os"

	"repro/internal/lint"
	"repro/internal/lint/errtaxonomy"
	"repro/internal/lint/lockfsync"
	"repro/internal/lint/metricsdrift"
	"repro/internal/lint/noalloc"
	"repro/internal/lint/spanend"
)

// Analyzers is the full suite, in the order findings are attributed.
var Analyzers = []*lint.Analyzer{
	lockfsync.Analyzer,
	spanend.Analyzer,
	errtaxonomy.Analyzer,
	metricsdrift.Analyzer,
	noalloc.Analyzer,
}

func main() {
	os.Exit(lint.Main(Analyzers, os.Args[1:], os.Stdout, os.Stderr))
}
