package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestListAnalyzers checks the registered analyzer set through the real
// flag surface.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := lint.Main(Analyzers, []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("npnlint -list exited %d\n%s", code, stderr.String())
	}
	for _, name := range []string{"lockfsync", "spanend", "errtaxonomy", "metricsdrift", "noalloc"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output is missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestRepoClean is the smoke test: the real multichecker, flags and
// loader included, must run clean over the whole module — the same
// invocation CI performs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := lint.Main(Analyzers, []string{"-C", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("npnlint ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
