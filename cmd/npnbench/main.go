// Command npnbench regenerates the paper's evaluation tables and figures on
// the synthetic workloads (see DESIGN.md for the substitution rationale).
//
// Usage:
//
//	npnbench -experiment table2|table3|fig4|fig5|ext|all [flags]
//
// Scale flags keep default runs laptop-sized; raise them to approach the
// paper's workload sizes:
//
//	-ns 4,5,6,7        arities for table2/table3
//	-maxfuncs 20000    workload cap per arity
//	-cuts 16           priority cuts per node
//	-fig5ns 5,7        arities for fig5
//	-fig5counts ...    workload sizes for fig5
//	-fig5sets 3        differently-seeded sets per fig5 point
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table2, table3, fig4, fig5, ext, or all")
		nsFlag     = flag.String("ns", "4,5,6", "comma-separated arities for table2/table3")
		maxFuncs   = flag.Int("maxfuncs", 20000, "max functions per arity (0 = unlimited)")
		cutsPer    = flag.Int("cuts", 16, "priority cuts per node for the circuit workload")
		seed       = flag.Int64("seed", 1, "workload seed")
		fig5ns     = flag.String("fig5ns", "5,7", "arities for fig5")
		fig5counts = flag.String("fig5counts", "20000,40000,60000,80000", "workload sizes for fig5")
		fig5sets   = flag.Int("fig5sets", 3, "random sets per fig5 point")
	)
	flag.Parse()

	ns, err := parseInts(*nsFlag)
	if err != nil {
		fatal(err)
	}
	opts := bench.WorkloadOpts{
		Kind:       bench.WorkloadCircuit,
		MaxFuncs:   *maxFuncs,
		Seed:       *seed,
		MaxPerNode: *cutsPer,
	}

	run := func(name string) bool { return *experiment == "all" || *experiment == name }
	any := false

	if run("table2") {
		any = true
		fmt.Println("== Table II: classification with different signature vectors ==")
		fmt.Print(bench.FormatTable2(bench.RunTable2(ns, opts)))
		fmt.Println()
	}
	if run("table3") {
		any = true
		fmt.Println("== Table III: runtime and accuracy of NPN classifiers ==")
		fmt.Print(bench.FormatTable3(bench.RunTable3(ns, opts)))
		fmt.Println()
	}
	if run("fig4") {
		any = true
		fmt.Println("== Fig. 4: point characteristics refine cofactor signatures ==")
		fmt.Print(bench.RunFig4(nil, true).Format())
		fmt.Println()
	}
	if run("ext") {
		any = true
		fmt.Println("== Extensions: spectral and higher-order cofactor signatures ==")
		fmt.Print(bench.FormatExtensions(bench.RunExtensions(ns, opts)))
		fmt.Println()
	}
	if run("fig5") {
		any = true
		f5ns, err := parseInts(*fig5ns)
		if err != nil {
			fatal(err)
		}
		counts, err := parseInts(*fig5counts)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Fig. 5: runtime stability over consecutive-encoding workloads ==")
		fmt.Print(bench.FormatFig5(bench.RunFig5(f5ns, counts, *fig5sets, *seed)))
		fmt.Println()
	}
	if !any {
		fatal(fmt.Errorf("unknown experiment %q", *experiment))
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npnbench:", err)
	os.Exit(2)
}
