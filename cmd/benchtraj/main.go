// Command benchtraj maintains the serving-stack performance trajectory:
// it folds a `go test -bench` run and a short loadgen against a live
// npnserve into one schema-stable BENCH_serve.json, and diffs such files
// against the committed baseline so CI fails on a real regression.
//
// Modes:
//
//	benchtraj emit -bench file.txt -url http://host:port [-benchtime 1x]
//	               [-requests 200] [-batch 16]
//	    Parse the benchmark text output in file.txt, drive -requests
//	    classify batches of -batch functions against the server at -url,
//	    derive p50/p99 from the server's own npn_http_request_duration
//	    histogram (scraped via GET /metrics), and write the combined
//	    JSON document to stdout.
//
//	benchtraj check -baseline BENCH_serve.json -current new.json
//	                [-max-p99-regress 0.25] [-p99-floor 2ms]
//	    Compare the serve-path p99 of current against baseline: fail
//	    (exit 1) when current exceeds baseline by more than the relative
//	    bound AND by more than the absolute floor — the floor keeps
//	    sub-millisecond jitter on shared CI runners from tripping the
//	    gate. Benchmark ns/op deltas are reported but never gate.
//
// The emitted schema (bench_serve/v1) is stable: fields are only ever
// added, so dashboards and the check mode can read every historical file.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"

	"repro/internal/tt"
	"repro/pkg/client"
)

// Schema names the BENCH_serve.json document layout.
const Schema = "bench_serve/v1"

// Doc is one trajectory measurement: the micro-benchmarks plus the
// serve-path latency quantiles of a real process.
type Doc struct {
	Schema     string      `json:"schema"`
	Date       string      `json:"date"`
	GoOS       string      `json:"goos"`
	GoArch     string      `json:"goarch"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []BenchLine `json:"benchmarks"`
	Serve      ServeStats  `json:"serve"`
}

// BenchLine is one parsed `go test -bench` result line.
type BenchLine struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// ServeStats is the loadgen outcome: latency quantiles derived from the
// server's own request-duration histogram, not client-side clocks, so the
// numbers match what operators see on /metrics.
type ServeStats struct {
	Route     string  `json:"route"`
	Requests  int     `json:"requests"`
	BatchSize int     `json:"batch_size"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: benchtraj emit|check [flags]")
	}
	switch os.Args[1] {
	case "emit":
		emitMain(os.Args[2:])
	case "check":
		checkMain(os.Args[2:])
	default:
		fatalf("unknown mode %q (want emit or check)", os.Args[1])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtraj: "+format+"\n", args...)
	os.Exit(1)
}

func emitMain(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	benchFile := fs.String("bench", "", "file holding `go test -bench` text output")
	url := fs.String("url", "", "base URL of a live npnserve with -metrics")
	benchtime := fs.String("benchtime", "", "benchtime the -bench file was produced with (recorded verbatim)")
	requests := fs.Int("requests", 200, "classify batches to send during loadgen")
	batch := fs.Int("batch", 16, "functions per classify batch")
	fs.Parse(args)
	if *benchFile == "" || *url == "" {
		fatalf("emit needs -bench and -url")
	}

	f, err := os.Open(*benchFile)
	if err != nil {
		fatalf("%v", err)
	}
	lines, err := parseBench(f)
	f.Close()
	if err != nil {
		fatalf("parsing %s: %v", *benchFile, err)
	}
	if len(lines) == 0 {
		fatalf("%s holds no benchmark result lines", *benchFile)
	}

	serve, err := loadgen(*url, *requests, *batch)
	if err != nil {
		fatalf("loadgen: %v", err)
	}

	doc := Doc{
		Schema:     Schema,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Benchtime:  *benchtime,
		Benchmarks: lines,
		Serve:      *serve,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("%v", err)
	}
}

// benchLine matches `go test -bench -benchmem` result lines, e.g.
//
//	BenchmarkWALReplay/replay-10k-8  42  28812345 ns/op  1234 B/op  56 allocs/op
//
// Custom ReportMetric columns (the transport benchmark's req-B/resp-B
// payload sizes) may sit between ns/op and B/op and are skipped.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+[\d.]+ \S+-B)*(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseBench(f io.Reader) ([]BenchLine, error) {
	var out []BenchLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op on %q", sc.Text())
		}
		l := BenchLine{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			l.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			l.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, l)
	}
	return out, sc.Err()
}

// loadgen drives classify traffic at the server and reads the latency
// quantiles back out of its request-duration histogram. The workload is
// deterministic: a seeded corpus is inserted first, then every batch
// mixes stored functions (hits) with fresh random ones (misses).
func loadgen(url string, requests, batch int) (*ServeStats, error) {
	const route = "/v2/classify"
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(url)

	rng := rand.New(rand.NewSource(42))
	var corpus []string
	for n := 4; n <= 8; n++ {
		for k := 0; k < 8; k++ {
			corpus = append(corpus, tt.Random(n, rng).Hex())
		}
	}
	if _, err := c.Insert(ctx, corpus); err != nil {
		return nil, fmt.Errorf("seeding corpus: %w", err)
	}

	for i := 0; i < requests; i++ {
		fns := make([]string, batch)
		for j := range fns {
			if j%2 == 0 {
				fns[j] = corpus[rng.Intn(len(corpus))]
			} else {
				fns[j] = tt.Random(4+rng.Intn(5), rng).Hex()
			}
		}
		if _, err := c.Classify(ctx, fns); err != nil {
			return nil, fmt.Errorf("batch %d: %w", i, err)
		}
	}

	sc, err := c.Metrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("scraping metrics: %w", err)
	}
	labels := []string{"route=" + route, "method=POST", "code=2xx"}
	count, ok := sc.Value("npn_http_request_duration_seconds_count", labels...)
	if !ok || count < float64(requests) {
		return nil, fmt.Errorf("server histogram counts %v classify requests, loadgen sent %d", count, requests)
	}
	return &ServeStats{
		Route:     route,
		Requests:  requests,
		BatchSize: batch,
		P50Ms:     sc.Quantile("npn_http_request_duration_seconds", 0.50, labels...) * 1e3,
		P99Ms:     sc.Quantile("npn_http_request_duration_seconds", 0.99, labels...) * 1e3,
	}, nil
}

func checkMain(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	baselinePath := fs.String("baseline", "", "committed BENCH_serve.json to diff against")
	currentPath := fs.String("current", "", "freshly emitted BENCH_serve.json")
	maxRegress := fs.Float64("max-p99-regress", 0.25, "maximum tolerated relative p99 growth")
	floor := fs.Duration("p99-floor", 2*time.Millisecond, "absolute p99 growth below which the gate never trips")
	fs.Parse(args)
	if *baselinePath == "" || *currentPath == "" {
		fatalf("check needs -baseline and -current")
	}

	base, err := readDoc(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := readDoc(*currentPath)
	if err != nil {
		fatalf("%v", err)
	}

	// Benchmark deltas are informational: ns/op on a shared runner is too
	// noisy to gate, but the trajectory should be visible in the log.
	baseBench := map[string]BenchLine{}
	for _, l := range base.Benchmarks {
		baseBench[l.Name] = l
	}
	for _, l := range cur.Benchmarks {
		b, ok := baseBench[l.Name]
		if !ok || b.NsPerOp == 0 {
			fmt.Printf("new       %-60s %12.0f ns/op\n", l.Name, l.NsPerOp)
			continue
		}
		fmt.Printf("%+8.1f%%  %-60s %12.0f ns/op (baseline %.0f)\n",
			100*(l.NsPerOp-b.NsPerOp)/b.NsPerOp, l.Name, l.NsPerOp, b.NsPerOp)
	}

	growth := cur.Serve.P99Ms - base.Serve.P99Ms
	rel := 0.0
	if base.Serve.P99Ms > 0 {
		rel = growth / base.Serve.P99Ms
	}
	fmt.Printf("serve %s p50 %.3fms -> %.3fms, p99 %.3fms -> %.3fms (%+.1f%%)\n",
		cur.Serve.Route, base.Serve.P50Ms, cur.Serve.P50Ms, base.Serve.P99Ms, cur.Serve.P99Ms, 100*rel)
	floorMs := float64(*floor) / float64(time.Millisecond)
	if rel > *maxRegress && growth > floorMs {
		fatalf("serve p99 regressed %.1f%% (> %.0f%%) and %+.3fms (> %.3fms floor)",
			100*rel, 100**maxRegress, growth, floorMs)
	}
	fmt.Println("p99 gate: ok")
}

func readDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, d.Schema, Schema)
	}
	return &d, nil
}
