package main

import (
	"os"
	"strings"
	"testing"
)

// TestParseBench parses a realistic go test -bench -benchmem transcript:
// noise lines are skipped, result lines keep their full sub-benchmark
// names, and the -benchmem columns are optional.
func TestParseBench(t *testing.T) {
	const transcript = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLookupCachedVsUncached/full-uncached-n6         	   16614	     15104 ns/op	    6819 B/op	      97 allocs/op
BenchmarkWALReplay/replay                                	      30	   9280500 ns/op	 2981437 B/op	  100357 allocs/op
BenchmarkBare                                            	 1000000	      1042 ns/op
BenchmarkTransportClassify/binary-n6-batch16             	   32944	     70210 ns/op	       149.0 req-B	       437.0 resp-B	   16494 B/op	     204 allocs/op
PASS
ok  	repro	7.247s
`
	lines, err := parseBench(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("parsed %d lines, want 4: %+v", len(lines), lines)
	}
	l := lines[0]
	if l.Name != "BenchmarkLookupCachedVsUncached/full-uncached-n6" ||
		l.Iterations != 16614 || l.NsPerOp != 15104 || l.BytesPerOp != 6819 || l.AllocsPerOp != 97 {
		t.Fatalf("line 0 = %+v", l)
	}
	if lines[1].NsPerOp != 9280500 || lines[1].AllocsPerOp != 100357 {
		t.Fatalf("line 1 = %+v", lines[1])
	}
	bare := lines[2]
	if bare.Name != "BenchmarkBare" || bare.NsPerOp != 1042 || bare.BytesPerOp != 0 || bare.AllocsPerOp != 0 {
		t.Fatalf("line 2 = %+v", bare)
	}
	// Custom ReportMetric columns (req-B/resp-B) between ns/op and B/op
	// must not swallow the -benchmem columns.
	tr := lines[3]
	if tr.Name != "BenchmarkTransportClassify/binary-n6-batch16" ||
		tr.NsPerOp != 70210 || tr.BytesPerOp != 16494 || tr.AllocsPerOp != 204 {
		t.Fatalf("line 3 = %+v", tr)
	}
}

// TestReadDocRejectsForeignSchema: the trajectory tooling refuses files
// it does not understand instead of diffing garbage.
func TestReadDocRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.json"
	if err := os.WriteFile(path, []byte(`{"schema":"something/v9","serve":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readDoc(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("foreign schema accepted: %v", err)
	}
}
