// Quickstart: classify a handful of Boolean functions under NPN equivalence
// and inspect why two of them land in the same class.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/tt"
)

func main() {
	// Four 3-variable functions given as hex truth tables:
	//   maj     = majority(x1,x2,x3)        (paper's f1, Fig. 1a)
	//   majNeg  = an NP transform of maj    (paper's f2-style function)
	//   single  = x3                        (paper's f3, Fig. 1c)
	//   parity  = x1 ⊕ x2 ⊕ x3
	maj := tt.MustFromHex(3, "e8")
	majNeg := maj.FlipVar(0).SwapVars(1, 2) // still NPN-equivalent to maj
	single := tt.MustFromHex(3, "f0")
	parity := tt.MustFromHex(3, "96")

	fs := []*tt.TT{maj, majNeg, single, parity}
	names := []string{"maj", "majNeg", "single", "parity"}

	// Classify with the full Mixed Signature Vector (Algorithm 1).
	cls := core.New(3, core.ConfigAll())
	res := cls.Classify(fs)

	fmt.Printf("classified %d functions into %d NPN classes\n\n", len(fs), res.NumClasses)
	for i, f := range fs {
		fmt.Printf("  %-7s %s -> class %d\n", names[i], f.Hex(), res.ClassOf[i])
	}

	// The matcher can produce an explicit witness for the merged pair.
	m := match.NewMatcher(3)
	if tr, ok := m.Equivalent(maj, majNeg); ok {
		fmt.Printf("\nwitness: majNeg = τ(maj) with τ: %v\n", tr)
	}

	// And certify the negative verdicts.
	if _, ok := m.Equivalent(maj, parity); !ok {
		fmt.Println("maj and parity are certified NPN-inequivalent")
	}
}
