// Synthesis: the paper's motivating use case — during technology mapping, a
// mapper enumerates cuts of a subject graph and needs the NPN class of every
// cut function to look up implementations in a pre-characterized cell
// library. This example builds arithmetic circuits, enumerates k-feasible
// cuts, and shows how far NPN classification shrinks the function library.
//
// Run with: go run ./examples/synthesis
package main

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/core"
	"repro/internal/cut"
	"repro/internal/gen"
	"repro/internal/tt"
)

func main() {
	circuits := []struct {
		name string
		g    *aig.AIG
	}{
		{"8-bit ripple-carry adder", gen.RippleCarryAdder(8)},
		{"5x5 array multiplier", gen.ArrayMultiplier(5)},
		{"16-bit barrel shifter", gen.BarrelShifter(16)},
		{"10-bit comparator", gen.Comparator(10)},
	}

	k := 4
	fmt.Printf("cut size k = %d\n\n", k)
	cls := core.New(k, core.ConfigAll())

	var all []*tt.TT
	for _, c := range circuits {
		fs := cut.Harvest(c.g, k, cut.Options{K: k, MaxPerNode: 16})
		res := cls.Classify(fs)
		fmt.Printf("%-28s %5d AND nodes -> %5d distinct cut functions -> %4d NPN classes (%.1fx reduction)\n",
			c.name, c.g.NumAnds(), len(fs), res.NumClasses, safeRatio(len(fs), res.NumClasses))
		all = append(all, fs...)
	}

	// A shared cell library across all circuits compresses further: classify
	// the union of every circuit's cut functions.
	union := gen.Dedup(all)
	res := cls.Classify(union)
	fmt.Printf("\nunion library: %d distinct functions -> %d NPN classes (%.1fx reduction)\n",
		len(union), res.NumClasses, safeRatio(len(union), res.NumClasses))
	fmt.Println("\neach class needs only one pre-characterized implementation in the cell library.")
}

func safeRatio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
