// Dedup: Boolean-matching workflow — given a "cell library" polluted with
// NPN variants of the same cells, group it into NPN classes with the
// signature classifier, then certify each group with the exact matcher and
// print the witness transform that rewires one representative into each
// variant (the information a technology mapper needs to instantiate a cell
// with permuted/negated pins).
//
// Run with: go run ./examples/dedup
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/tt"
)

func main() {
	const n = 5
	rng := rand.New(rand.NewSource(2023))

	// Build a library: 8 base cells, each present in several disguises.
	var library []*tt.TT
	var origin []int // which base cell each entry came from (ground truth)
	for cell := 0; cell < 8; cell++ {
		base := tt.Random(n, rng)
		for v := 0; v < 4; v++ {
			f := base
			if v > 0 {
				f = npn.RandomTransform(n, rng).Apply(base)
			}
			library = append(library, f)
			origin = append(origin, cell)
		}
	}
	rng.Shuffle(len(library), func(i, j int) {
		library[i], library[j] = library[j], library[i]
		origin[i], origin[j] = origin[j], origin[i]
	})

	// Step 1: signature classification (fast, no enumeration).
	cls := core.New(n, core.ConfigAll())
	res := cls.Classify(library)
	fmt.Printf("library of %d entries -> %d signature classes\n\n", len(library), res.NumClasses)

	// Step 2: certify each class with the exact matcher and print witnesses.
	m := match.NewMatcher(n)
	reps := make(map[int]int) // class id -> representative index
	certified := true
	for i := range library {
		id := res.ClassOf[i]
		rep, ok := reps[id]
		if !ok {
			reps[id] = i
			fmt.Printf("class %d: representative %s\n", id, library[i].Hex())
			continue
		}
		tr, ok := m.Equivalent(library[rep], library[i])
		if !ok {
			certified = false
			fmt.Printf("class %d: entry %s NOT equivalent to representative — signature collision!\n",
				id, library[i].Hex())
			continue
		}
		fmt.Printf("class %d: %s = τ(rep) with τ: %v\n", id, library[i].Hex(), tr)
	}

	if certified {
		fmt.Println("\nall classes certified exact: no signature collisions in this library.")
	}

	// Cross-check against ground truth.
	agree := true
	for i := range library {
		for j := i + 1; j < len(library); j++ {
			if (origin[i] == origin[j]) != (res.ClassOf[i] == res.ClassOf[j]) {
				agree = false
			}
		}
	}
	fmt.Printf("classification matches ground truth: %v\n", agree)
}
