// Signatures: reproduce Table I of the paper — every signature vector of the
// 3-majority f1 and the single-variable function f3, plus the same vectors
// for a function of your choice.
//
// Run with: go run ./examples/signatures [hex-truth-table n]
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/sig"
	"repro/internal/tt"
)

func main() {
	fmt.Println("Table I reproduction (paper, DATE 2023):")
	show("f1 (3-majority)", tt.MustFromHex(3, "e8"))
	show("f3 (single variable)", tt.MustFromHex(3, "f0"))

	if len(os.Args) == 3 {
		n, err := strconv.Atoi(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad arity:", err)
			os.Exit(2)
		}
		f, err := tt.FromHex(n, os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad truth table:", err)
			os.Exit(2)
		}
		show(fmt.Sprintf("user function (%d vars)", n), f)
	}
}

func show(name string, f *tt.TT) {
	e := sig.NewEngine(f.NumVars())
	h0, h1 := e.OSV01(f)
	d0, d1 := e.OSDV01(f)
	fmt.Printf("\n%s  truth table 0x%s, |f| = %d\n", name, f.Hex(), f.CountOnes())
	fmt.Printf("  OCV1  = %v\n", e.OCV1(f))
	fmt.Printf("  OCV2  = %v\n", e.OCV2(f))
	fmt.Printf("  OIV   = %v\n", e.OIV(f))
	fmt.Printf("  OSV1  = %v\n", h1.Expand())
	fmt.Printf("  OSV0  = %v\n", h0.Expand())
	fmt.Printf("  OSV   = %v\n", h0.Add(h1).Expand())
	fmt.Printf("  OSDV1 = %v\n", d1.Flatten())
	fmt.Printf("  OSDV0 = %v\n", d0.Flatten())
	fmt.Printf("  OSDV  = %v\n", e.OSDV(f).Flatten())
	fmt.Printf("  sensitivity sen(f) = %d, total influence = %d\n",
		e.Sensitivity(f), e.TotalInfluence(f))
}
