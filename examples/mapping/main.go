// Mapping: full technology-mapping flow — map arithmetic circuits to
// k-input LUTs, verify the mapping functionally, and show how NPN
// classification compresses the cell library the mapping needs. This is the
// end-to-end version of the paper's motivating application.
//
// Run with: go run ./examples/mapping
package main

import (
	"fmt"
	"os"

	"repro/internal/aig"
	"repro/internal/gen"
	"repro/internal/mapper"
)

func main() {
	circuits := []struct {
		name string
		g    *aig.AIG
	}{
		{"adder16 (ripple)", gen.RippleCarryAdder(16)},
		{"adder12 (lookahead)", gen.CarryLookaheadAdder(12)},
		{"mult6", gen.ArrayMultiplier(6)},
		{"shifter32", gen.BarrelShifter(32)},
		{"alu8", gen.ALUSlice(8)},
		{"voter81", gen.Voter(4)},
	}

	k := 6
	fmt.Printf("%d-LUT technology mapping (depth mode), functionally verified:\n\n", k)
	fmt.Printf("%-22s %8s %8s %8s %10s %10s\n", "circuit", "ANDs", "LUTs", "depth", "functions", "NPNclasses")
	for _, c := range circuits {
		r, err := mapper.Map(c.g, mapper.Options{K: k, Mode: mapper.Depth})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapping:", err)
			os.Exit(1)
		}
		// Exhaustive verification when the PI count allows a global truth
		// table; random-simulation verification beyond that.
		var verr error
		if c.g.NumPIs() <= 14 {
			verr = mapper.Verify(c.g, r)
		} else {
			verr = mapper.VerifySampled(c.g, r, 64, 1)
		}
		if verr != nil {
			fmt.Fprintln(os.Stderr, "verification FAILED:", verr)
			os.Exit(1)
		}
		fmt.Printf("%-22s %8d %8d %8d %10d %10d\n",
			c.name, c.g.NumAnds(), r.Area(), r.Depth, r.Funcs, r.NumClasses())
	}

	fmt.Println("\nall mappings verified equivalent to the original circuits.")
	fmt.Println("the NPNclasses column is the cell-library size the mapper actually needs —")
	fmt.Println("the compression from 'functions' to 'classes' is what NPN classification buys.")

	// Depth vs area mode on one circuit.
	g := gen.ArrayMultiplier(6)
	d, _ := mapper.Map(g, mapper.Options{K: k, Mode: mapper.Depth})
	a, _ := mapper.Map(g, mapper.Options{K: k, Mode: mapper.Area})
	fmt.Printf("\nmult6 objective trade-off: depth mode %d LUTs @ depth %d; area mode %d LUTs @ depth %d\n",
		d.Area(), d.Depth, a.Area(), a.Depth)
}
