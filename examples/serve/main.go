// Serve: the federated NPN classification service as a client sees it,
// driven through pkg/client — the official Go client of the /v2 API. The
// example starts an npnserve-style server in-process on a loopback port,
// then drives it over real HTTP with mixed-arity batches: it inserts a
// "cell library" spanning n = 4..7 in one request, classifies one batch
// of NPN disguises of all those cells — each function routed to its
// arity's store by the server — and certifies every answer by replaying
// the returned witness locally (client.ReplayWitness). It finishes by
// demonstrating the /v2 per-item error contract: a batch with one bad
// entry still answers the good ones.
//
// Run with: go run ./examples/serve
// To drive an already-running server instead: go run ./examples/serve -addr http://host:port
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/federation"
	"repro/internal/npn"
	"repro/internal/store"
	"repro/internal/tt"
	"repro/pkg/client"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running npnserve (empty = start one in-process)")
	flag.Parse()
	const lo, hi = 4, 10
	ctx := context.Background()

	baseURL := *addr
	if baseURL == "" {
		url, shutdown, err := startInProcess(lo, hi)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		baseURL = url
		fmt.Printf("started in-process npnserve at %s (arities %d..%d)\n\n", baseURL, lo, hi)
	}
	c := client.New(baseURL)

	rng := rand.New(rand.NewSource(2023))

	// A "cell library" of cells at several arities, inserted in ONE batch:
	// the server infers each cell's arity from its hex length and routes
	// it to that arity's store.
	var cells []*tt.TT
	var hexes []string
	for n := 4; n <= 7; n++ {
		for k := 0; k < 3; k++ {
			f := tt.Random(n, rng)
			cells = append(cells, f)
			hexes = append(hexes, f.Hex())
		}
	}
	ins, err := c.Insert(ctx, hexes)
	if err != nil {
		fatal(err)
	}
	created := 0
	for _, r := range ins.Results {
		if r.New {
			created++
		}
	}
	fmt.Printf("inserted %d cells (n=4..7, one mixed batch) -> %d classes created\n", len(cells), created)

	// ...queried with NPN disguises: permuted/negated pin assignments,
	// again all arities in one batch.
	disguises := make([]*tt.TT, 3*len(cells))
	query := make([]string, len(disguises))
	for i := range disguises {
		cell := cells[i%len(cells)]
		disguises[i] = npn.RandomTransform(cell.NumVars(), rng).Apply(cell)
		query[i] = disguises[i].Hex()
	}
	cls, err := c.Classify(ctx, query)
	if err != nil {
		fatal(err)
	}
	certified := 0
	for i, r := range cls.Results {
		if !r.Hit {
			fmt.Printf("query %s: MISS\n", r.Function)
			continue
		}
		// The client replays the wire witness locally: τ(rep) = query, so
		// the answer is certified without trusting the server's matcher.
		if err := client.ReplayWitness(r); err != nil {
			fatal(err)
		}
		certified++
		if i < 3 {
			fmt.Printf("query n=%d %s -> class %s rep %s (witness replayed)\n",
				disguises[i].NumVars(), r.Function, r.Class, r.Rep)
		}
	}
	fmt.Printf("...\nclassified %d disguises: %d hits, every witness replayed and certified locally\n\n",
		len(disguises), certified)

	// The /v2 contract answers a partially-bad batch per item: the bogus
	// entry carries {"error":{"code":"bad_hex"}}, the good one still hits.
	mixed, err := c.Classify(ctx, []string{query[0], "zzzz"})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("per-item errors: batch of 2 with one bad entry -> %d error item(s); good item hit=%v, bad item code=%q\n\n",
		mixed.Errors, mixed.Results[0].Hit, mixed.Results[1].Error.Code)

	raw, err := c.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	var st federation.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		fatal(err)
	}
	fmt.Printf("federation stats: arities %d..%d, %d classes total, %d lookups (%d hits, %d LRU), profile cache %d hits / %d misses\n",
		st.MinVars, st.MaxVars, st.Totals.Classes, st.Totals.Lookups, st.Totals.Hits,
		st.Totals.CacheHits, st.Totals.ProfileHits, st.Totals.ProfileMisses)
	for _, s := range st.PerArity {
		fmt.Printf("  n=%d: %d classes in %d shards, %d lookups, %.1fµs/batch\n",
			s.Arity, s.Classes, s.Shards, s.Lookups, s.AvgBatchMicros)
	}
}

// startInProcess runs the federated service on a loopback listener and
// returns its base URL and a graceful-shutdown function.
func startInProcess(lo, hi int) (string, func(), error) {
	reg, err := federation.New(lo, hi, federation.Options{
		Store: store.Options{Shards: 8},
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: federation.NewHandler(reg)}
	go srv.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
