// Serve: the federated NPN classification service as a client sees it.
// The example starts an npnserve-style server in-process on a loopback
// port, then drives it over real HTTP with mixed-arity batches: it
// inserts a "cell library" spanning n = 4..7 in one request, classifies
// one batch of NPN disguises of all those cells — each function routed to
// its arity's store by the server — and replays every returned witness
// locally to certify the answers. This is the Boolean-matching loop of
// examples/dedup turned into a multi-arity service round trip.
//
// Run with: go run ./examples/serve
// To drive an already-running server instead: go run ./examples/serve -addr http://host:port
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/federation"
	"repro/internal/npn"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running npnserve (empty = start one in-process)")
	flag.Parse()
	const lo, hi = 4, 10

	baseURL := *addr
	if baseURL == "" {
		url, shutdown, err := startInProcess(lo, hi)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		defer shutdown()
		baseURL = url
		fmt.Printf("started in-process npnserve at %s (arities %d..%d)\n\n", baseURL, lo, hi)
	}

	rng := rand.New(rand.NewSource(2023))

	// A "cell library" of cells at several arities, inserted in ONE batch:
	// the server infers each cell's arity from its hex length and routes
	// it to that arity's store.
	var cells []*tt.TT
	var hexes []string
	for n := 4; n <= 7; n++ {
		for k := 0; k < 3; k++ {
			f := tt.Random(n, rng)
			cells = append(cells, f)
			hexes = append(hexes, f.Hex())
		}
	}
	var ins service.InsertResponse
	if err := call(baseURL+"/v1/insert", service.ClassifyRequest{Functions: hexes}, &ins); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	created := 0
	for _, r := range ins.Results {
		if r.New {
			created++
		}
	}
	fmt.Printf("inserted %d cells (n=4..7, one mixed batch) -> %d classes created\n", len(cells), created)

	// ...queried with NPN disguises: permuted/negated pin assignments,
	// again all arities in one batch.
	disguises := make([]*tt.TT, 3*len(cells))
	query := make([]string, len(disguises))
	for i := range disguises {
		cell := cells[i%len(cells)]
		disguises[i] = npn.RandomTransform(cell.NumVars(), rng).Apply(cell)
		query[i] = disguises[i].Hex()
	}
	var cls service.ClassifyResponse
	if err := call(baseURL+"/v1/classify", service.ClassifyRequest{Functions: query}, &cls); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	certified := 0
	for i, r := range cls.Results {
		if !r.Hit {
			fmt.Printf("query %s: MISS\n", r.Function)
			continue
		}
		tr, err := r.Witness.Transform()
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: bad witness:", err)
			os.Exit(1)
		}
		n := disguises[i].NumVars()
		if !tr.Apply(tt.MustFromHex(n, r.Rep)).Equal(disguises[i]) {
			fmt.Fprintf(os.Stderr, "serve: witness for %s does not verify\n", r.Function)
			os.Exit(1)
		}
		certified++
		if i < 3 {
			fmt.Printf("query n=%d %s -> class %s rep %s with τ: %v\n", n, r.Function, r.Class, r.Rep, tr)
		}
	}
	fmt.Printf("...\nclassified %d disguises: %d hits, every witness replayed and certified locally\n\n",
		len(disguises), certified)

	var st federation.Stats
	if err := get(baseURL+"/v1/stats", &st); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Printf("federation stats: arities %d..%d, %d classes total, %d lookups (%d hits, %d LRU), profile cache %d hits / %d misses\n",
		st.MinVars, st.MaxVars, st.Totals.Classes, st.Totals.Lookups, st.Totals.Hits,
		st.Totals.CacheHits, st.Totals.ProfileHits, st.Totals.ProfileMisses)
	for _, s := range st.PerArity {
		fmt.Printf("  n=%d: %d classes in %d shards, %d lookups, %.1fµs/batch\n",
			s.Arity, s.Classes, s.Shards, s.Lookups, s.AvgBatchMicros)
	}
}

// startInProcess runs the federated service on a loopback listener and
// returns its base URL and a graceful-shutdown function.
func startInProcess(lo, hi int) (string, func(), error) {
	reg, err := federation.New(lo, hi, federation.Options{
		Store: store.Options{Shards: 8},
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: federation.NewHandler(reg)}
	go srv.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// call POSTs a JSON body and decodes the JSON response into out.
func call(url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return fmt.Errorf("%s: %s: %s", url, resp.Status, buf.String())
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// get GETs a URL and decodes the JSON response into out.
func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
