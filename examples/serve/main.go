// Serve: the NPN classification service as a client sees it. The example
// starts an npnserve-style server in-process on a loopback port, then
// drives it over real HTTP: it inserts a batch of 6-variable cut
// functions, classifies a batch of NPN disguises of the same cells, and
// replays every returned witness locally to certify the answers. This is
// the Boolean-matching loop of examples/dedup turned into a service
// round trip.
//
// Run with: go run ./examples/serve
// To drive an already-running server instead: go run ./examples/serve -addr http://host:port
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/npn"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running npnserve (empty = start one in-process)")
	flag.Parse()
	const n = 6

	baseURL := *addr
	if baseURL == "" {
		url, shutdown, err := startInProcess(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		defer shutdown()
		baseURL = url
		fmt.Printf("started in-process npnserve at %s (n=%d)\n\n", baseURL, n)
	}

	rng := rand.New(rand.NewSource(2023))

	// A "cell library" of 12 base cells...
	cells := make([]*tt.TT, 12)
	hexes := make([]string, len(cells))
	for i := range cells {
		cells[i] = tt.Random(n, rng)
		hexes[i] = cells[i].Hex()
	}
	var ins service.InsertResponse
	if err := call(baseURL+"/v1/insert", service.ClassifyRequest{Functions: hexes}, &ins); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	created := 0
	for _, r := range ins.Results {
		if r.New {
			created++
		}
	}
	fmt.Printf("inserted %d cells -> %d classes created\n", len(cells), created)

	// ...queried with NPN disguises: permuted/negated pin assignments.
	disguises := make([]*tt.TT, 3*len(cells))
	query := make([]string, len(disguises))
	for i := range disguises {
		disguises[i] = npn.RandomTransform(n, rng).Apply(cells[i%len(cells)])
		query[i] = disguises[i].Hex()
	}
	var cls service.ClassifyResponse
	if err := call(baseURL+"/v1/classify", service.ClassifyRequest{Functions: query}, &cls); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	certified := 0
	for i, r := range cls.Results {
		if !r.Hit {
			fmt.Printf("query %s: MISS\n", r.Function)
			continue
		}
		tr, err := r.Witness.Transform()
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: bad witness:", err)
			os.Exit(1)
		}
		if !tr.Apply(tt.MustFromHex(n, r.Rep)).Equal(disguises[i]) {
			fmt.Fprintf(os.Stderr, "serve: witness for %s does not verify\n", r.Function)
			os.Exit(1)
		}
		certified++
		if i < 3 {
			fmt.Printf("query %s -> class %s rep %s with τ: %v\n", r.Function, r.Class, r.Rep, tr)
		}
	}
	fmt.Printf("...\nclassified %d disguises: %d hits, every witness replayed and certified locally\n\n",
		len(disguises), certified)

	var st service.Stats
	if err := get(baseURL+"/v1/stats", &st); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Printf("server stats: %d classes in %d shards, %d lookups (%d hits, %d cache), %.1fµs/batch\n",
		st.Classes, st.Shards, st.Lookups, st.Hits, st.CacheHits, st.AvgBatchMicros)
}

// startInProcess runs the service on a loopback listener and returns its
// base URL and a graceful-shutdown function.
func startInProcess(n int) (string, func(), error) {
	st := store.New(n, store.Options{Shards: 8})
	svc := service.New(st, service.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	go srv.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// call POSTs a JSON body and decodes the JSON response into out.
func call(url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return fmt.Errorf("%s: %s: %s", url, resp.Status, buf.String())
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// get GETs a URL and decodes the JSON response into out.
func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
