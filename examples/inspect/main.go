// Inspect: a Boolean-function inspector. Give it a truth table (hex) and
// its arity and it prints everything this library knows about the function:
// two-level form, signatures (the paper's face and point characteristics),
// hypercube-view invariants, symmetries, unateness, canonical forms.
//
// Run with: go run ./examples/inspect e8 3
// (defaults to the paper's 3-majority if no arguments are given)
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/hypercube"
	"repro/internal/npn"
	"repro/internal/sig"
	"repro/internal/symmetry"
	"repro/internal/tt"
)

func main() {
	hex, n := "e8", 3
	if len(os.Args) == 3 {
		hex = os.Args[1]
		v, err := strconv.Atoi(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, "inspect: bad arity:", err)
			os.Exit(2)
		}
		n = v
	}
	f, err := tt.FromHex(n, hex)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(2)
	}

	fmt.Printf("f = 0x%s on %d variables\n", f.Hex(), n)
	fmt.Printf("  SOP (irredundant):  %s\n", f.SOPString())
	d := decomp.Decompose(f)
	fmt.Printf("  decomposition:      %s   (shape %s)\n", d, d.Shape())
	fmt.Printf("  |f| = %d / %d, balanced: %v, support: %v\n",
		f.CountOnes(), f.NumBits(), f.IsBalanced(), f.Support())

	e := sig.NewEngine(n)
	h0, h1 := e.OSV01(f)
	fmt.Println("\nface characteristics (cofactors):")
	fmt.Printf("  OCV1 = %v\n", e.OCV1(f))
	fmt.Printf("  OCV2 = %v\n", e.OCV2(f))
	fmt.Println("point characteristics (sensitivity):")
	fmt.Printf("  OSV1 = %v   OSV0 = %v   sen(f) = %d\n", h1.Expand(), h0.Expand(), e.Sensitivity(f))
	fmt.Println("point-face characteristics (influence):")
	fmt.Printf("  OIV = %v   total influence = %d\n", e.OIV(f), e.TotalInfluence(f))

	fmt.Println("\nhypercube onset graph:")
	fmt.Printf("  degree sequence: %v (degree = n − sensitivity at each 1-point)\n",
		hypercube.DegreeSequence(f))
	fmt.Printf("  edges: %d, components: %v\n", hypercube.EdgeCount(f), hypercube.Components(f))

	fmt.Println("\nstructure:")
	fmt.Printf("  symmetry classes: %v, totally symmetric: %v, self-dual: %v\n",
		symmetry.Classes(f), symmetry.TotallySymmetric(f), symmetry.SelfDual(f))
	prof := sig.UnatenessProfile(f)
	fmt.Printf("  unateness: %v, unate: %v\n", prof, sig.IsUnate(f))

	fmt.Println("\ncanonical forms:")
	fmt.Printf("  sifting (semi-canonical): 0x%s\n", npn.SiftCanon(f).Hex())
	if n <= npn.MaxExactVars {
		canon, w := npn.CanonWithWitness(f)
		fmt.Printf("  exact NPN canonical:      0x%s via %v\n", canon.Hex(), w)
	} else {
		fmt.Printf("  exact NPN canonical:      (n > %d: use the MSV key below)\n", npn.MaxExactVars)
	}
	cls := core.New(n, core.ConfigAll())
	fmt.Printf("  MSV class key (FNV-64):   %016x\n", cls.Hash(f))
}
