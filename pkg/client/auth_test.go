// The hardened-edge client contract: the API key rides every request as
// a Bearer credential, 401s decode into the stable unauthorized code,
// and 429s are retried only on the server's own Retry-After schedule.
package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/pkg/client"
)

// TestAPIKeySentOnEveryPath: WithAPIKey stamps the Authorization header
// on both the buffered and the streaming request paths.
func TestAPIKeySentOnEveryPath(t *testing.T) {
	ctx := context.Background()
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		if r.URL.Path == "/v2/classify/stream" {
			w.Write([]byte(`{"function":"e8e8"}` + "\n"))
			return
		}
		w.Write([]byte(`{"results":[]}`))
	}))
	t.Cleanup(srv.Close)

	c := client.New(srv.URL, client.WithAPIKey("sekrit"))
	if _, err := c.Classify(ctx, []string{"e8e8"}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "Bearer sekrit" {
		t.Fatalf("classify Authorization = %q", got.Load())
	}

	err := c.ClassifyStream(ctx, []string{"e8e8"}, func(i int, it api.ClassifyItem) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != "Bearer sekrit" {
		t.Fatalf("stream Authorization = %q", got.Load())
	}
}

// TestUnauthorizedDecodes: a 401 from the guard surfaces as an
// *api.Error carrying the stable unauthorized code — and is not retried
// (retrying a credential failure can never succeed).
func TestUnauthorizedDecodes(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		api.WriteError(w, api.Errf(api.CodeUnauthorized, "missing API key"))
	}))
	t.Cleanup(srv.Close)

	c := client.New(srv.URL, client.WithRetries(3), client.WithBackoff(time.Millisecond))
	_, err := c.Classify(context.Background(), []string{"e8"})
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodeUnauthorized {
		t.Fatalf("err = %v, want unauthorized api.Error", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("401 was retried: %d calls", calls.Load())
	}
}

// TestRateLimitedRetryAfterHonored: a 429 naming an affordable
// Retry-After is retried after that pause, within the retry budget.
func TestRateLimitedRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			api.WriteError(w, api.Errf(api.CodeRateLimited, "slow down"))
			return
		}
		w.Write([]byte(`{"results":[]}`))
	}))
	t.Cleanup(srv.Close)

	// Pinned to JSON so the call count below sees only the retry policy,
	// not the binary-transport probe.
	c := client.New(srv.URL, client.WithRetries(1), client.WithBackoff(time.Millisecond),
		client.WithJSONTransport())
	if _, err := c.Classify(context.Background(), []string{"e8"}); err != nil {
		t.Fatalf("429+Retry-After was not retried: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestRateLimitedWithoutRetryAfterSurfaces: a 429 with no Retry-After
// (or one past MaxRetryAfter) is the caller's problem immediately — the
// client must not guess a pause and amplify the overload.
func TestRateLimitedWithoutRetryAfterSurfaces(t *testing.T) {
	for name, header := range map[string]string{
		"no header":    "",
		"unaffordable": "3600",
		"garbage":      "later",
	} {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			if header != "" {
				w.Header().Set("Retry-After", header)
			}
			api.WriteError(w, api.Errf(api.CodeRateLimited, "slow down"))
		}))

		c := client.New(srv.URL, client.WithRetries(3), client.WithBackoff(time.Millisecond))
		_, err := c.Classify(context.Background(), []string{"e8"})
		if e, ok := err.(*api.Error); !ok || e.Code != api.CodeRateLimited {
			t.Fatalf("%s: err = %v, want rate_limited api.Error", name, err)
		}
		if calls.Load() != 1 {
			t.Fatalf("%s: 429 was retried: %d calls", name, calls.Load())
		}
		srv.Close()
	}
}
