// Binary-transport negotiation from the client's side: parity with the
// JSON envelope against a real server, the permanent JSON fallback
// against servers that refuse the frame, and the cases that must skip
// binary up front.
package client_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
	"repro/pkg/client"
)

// newSingleServer is newSingle exposing the URL, so a test can point
// differently-configured clients at one server.
func newSingleServer(t *testing.T, n int) *httptest.Server {
	t.Helper()
	svc := service.New(store.New(n, store.Options{Shards: 4}), service.Options{Workers: 2})
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv
}

// TestBinaryTransportParity: the binary-negotiating client and a
// JSON-pinned client see byte-identical classify and insert responses
// from the same server, and binary-delivered witnesses replay.
func TestBinaryTransportParity(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(91))
	srv := newSingleServer(t, 6)
	bc := client.New(srv.URL)
	jc := client.New(srv.URL, client.WithJSONTransport())

	var hexes []string
	for i := 0; i < 8; i++ {
		hexes = append(hexes, tt.Random(6, rng).Hex())
	}
	bi, err := bc.Insert(ctx, hexes[:4])
	if err != nil {
		t.Fatal(err)
	}
	if bi.Results[0].Class == "" || !bi.Results[0].New {
		t.Fatalf("first insert not created: %+v", bi.Results[0])
	}
	// Re-inserting the same batch over each transport is idempotent and
	// must produce identical (all-existing) responses.
	bi2, err := bc.Insert(ctx, hexes[:4])
	if err != nil {
		t.Fatal(err)
	}
	ji2, err := jc.Insert(ctx, hexes[:4])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bi2, ji2) {
		t.Fatalf("insert responses diverge:\nbinary: %+v\n  json: %+v", bi2, ji2)
	}
	if bi2.Results[0].New {
		t.Fatalf("re-insert reported new: %+v", bi2.Results[0])
	}

	bcls, err := bc.Classify(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	jcls, err := jc.Classify(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bcls, jcls) {
		t.Fatalf("classify responses diverge:\nbinary: %+v\n  json: %+v", bcls, jcls)
	}
	hits := 0
	for _, it := range bcls.Results {
		if it.Hit {
			hits++
			if err := client.ReplayWitness(it); err != nil {
				t.Fatal(err)
			}
		}
	}
	if hits < 4 {
		t.Fatalf("%d hits, want at least the 4 inserted", hits)
	}
}

// jsonOnlyServer mimics a pre-binary npnserve: a binary Content-Type is
// refused with the unsupported_media_type envelope, JSON is served.
type jsonOnlyServer struct {
	requests atomic.Int32
	binary   atomic.Int32
}

func (s *jsonOnlyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Header.Get("Content-Type") != "application/json" {
		s.binary.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnsupportedMediaType)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{
			Error: api.Errf(api.CodeUnsupportedMediaType, "use application/json"),
		})
		return
	}
	var req api.BatchRequest
	json.NewDecoder(r.Body).Decode(&req)
	items := make([]api.ClassifyItem, len(req.Functions))
	for i, fn := range req.Functions {
		items[i] = api.ClassifyItem{Function: fn, Class: api.KeyHex(1)}
	}
	api.WriteJSON(w, http.StatusOK, api.ClassifyResponse{Results: items})
}

// TestBinaryFallbackLatches: one unsupported_media_type refusal makes
// the client JSON-only for its lifetime — the second call never probes.
func TestBinaryFallbackLatches(t *testing.T) {
	ctx := context.Background()
	backend := &jsonOnlyServer{}
	srv := httptest.NewServer(backend)
	defer srv.Close()
	c := client.New(srv.URL)
	fns := []string{tt.Random(6, rand.New(rand.NewSource(92))).Hex()}

	cls, err := c.Classify(ctx, fns)
	if err != nil || len(cls.Results) != 1 || cls.Results[0].Function != fns[0] {
		t.Fatalf("fallback classify: %v %+v", err, cls)
	}
	if got := backend.requests.Load(); got != 2 {
		t.Fatalf("first call made %d requests, want 2 (probe + JSON retry)", got)
	}
	if _, err := c.Classify(ctx, fns); err != nil {
		t.Fatal(err)
	}
	if got, bin := backend.requests.Load(), backend.binary.Load(); got != 3 || bin != 1 {
		t.Fatalf("after latch: %d requests (%d binary), want 3 (1 binary)", got, bin)
	}
}

// TestBinarySkipsAmbiguousHex: a batch containing a one-digit table
// (arity ambiguous across 0..2) goes straight to JSON.
func TestBinarySkipsAmbiguousHex(t *testing.T) {
	ctx := context.Background()
	backend := &jsonOnlyServer{}
	srv := httptest.NewServer(backend)
	defer srv.Close()
	c := client.New(srv.URL)

	if _, err := c.Classify(ctx, []string{"8"}); err != nil {
		t.Fatal(err)
	}
	if bin := backend.binary.Load(); bin != 0 {
		t.Fatalf("%d binary probes for an ambiguous batch, want 0", bin)
	}
	// Bad hex and non-power-of-two lengths also stay JSON, so the
	// server's canonical per-item errors are preserved.
	if _, err := c.Classify(ctx, []string{"zz", "abc"}); err != nil {
		t.Fatal(err)
	}
	if bin := backend.binary.Load(); bin != 0 {
		t.Fatalf("%d binary probes for unframeable batches, want 0", bin)
	}
}

// TestBinaryErrorParity: envelope-level failures surface as the same
// *api.Error over the binary path as over JSON.
func TestBinaryErrorParity(t *testing.T) {
	ctx := context.Background()
	srv := newSingleServer(t, 6)
	bc := client.New(srv.URL)

	// Per-item arity error inside a valid binary frame (server serves
	// only n=6; send n=4).
	cls, err := bc.Classify(ctx, []string{tt.Random(4, rand.New(rand.NewSource(93))).Hex()})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Errors != 1 || cls.Results[0].Error == nil || cls.Results[0].Error.Code != api.CodeArityOutOfRange {
		t.Fatalf("per-item arity error: %+v", cls.Results[0])
	}
}
