package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
)

// NDJSON streaming: the /v2/classify/stream and /v2/insert/stream
// endpoints answer one result line per input line, in order, so a client
// that has received k result lines knows exactly which inputs are
// outstanding. The stream methods here exploit that for resume: when the
// connection drops mid-stream, the request is re-issued with only the
// unanswered suffix of the batch, up to the client's retry budget, and
// the caller's callback never sees a duplicate or a gap.

// ClassifyStream classifies fns via POST /v2/classify/stream, invoking fn
// once per function in input order with its original index. Per-item
// failures arrive as items carrying Error; a terminal server-side error
// line or an exhausted retry budget returns an error. A non-nil error
// from fn aborts the stream.
func (c *Client) ClassifyStream(ctx context.Context, fns []string, fn func(i int, item api.ClassifyItem) error) error {
	return c.stream(ctx, "/v2/classify/stream", fns, func(i int, line []byte) error {
		var item api.ClassifyItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("client: bad stream line %d: %w", i, err)
		}
		return fn(i, item)
	})
}

// InsertStream inserts fns via POST /v2/insert/stream; the streaming twin
// of Insert, with the same resume behavior as ClassifyStream.
func (c *Client) InsertStream(ctx context.Context, fns []string, fn func(i int, item api.InsertItem) error) error {
	return c.stream(ctx, "/v2/insert/stream", fns, func(i int, line []byte) error {
		var item api.InsertItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("client: bad stream line %d: %w", i, err)
		}
		return fn(i, item)
	})
}

// stream pumps one NDJSON request/response exchange with resume: next is
// the index of the first function not yet answered.
func (c *Client) stream(ctx context.Context, path string, fns []string, deliver func(i int, line []byte) error) error {
	next := 0
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if next >= len(fns) {
			return nil
		}
		if attempt > 0 {
			if err := sleepCtx(ctx, time.Duration(attempt)*c.backoff); err != nil {
				return err
			}
		}
		advanced, err := c.streamOnce(ctx, path, fns[next:], func(j int, line []byte) error {
			return deliver(next+j, line)
		})
		next += advanced
		if err == nil {
			return nil
		}
		var se *streamError
		if !errors.As(err, &se) {
			return err // caller abort or terminal server error: do not retry
		}
		lastErr = se.err
		if advanced > 0 {
			attempt = 0 // progress resets the budget: a slow stream is not a flap
		}
	}
	return fmt.Errorf("client: stream %s: retries exhausted after %d/%d results: %w",
		path, next, len(fns), lastErr)
}

// streamError marks a retryable transport-level stream failure.
type streamError struct{ err error }

func (e *streamError) Error() string { return e.err.Error() }
func (e *streamError) Unwrap() error { return e.err }

// streamOnce issues one streaming exchange, returning how many result
// lines were delivered. Transport failures come back as *streamError
// (resumable); terminal error lines and callback errors come back as-is.
func (c *Client) streamOnce(ctx context.Context, path string, fns []string, deliver func(j int, line []byte) error) (int, error) {
	// The body is produced lazily through a pipe — the endpoints exist
	// for batches too large to buffer, so the client must not hold the
	// whole serialization in memory either. Each entry is sent as a
	// JSON-quoted line (the server accepts both bare and quoted forms):
	// an entry holding whitespace, a newline or nothing at all still
	// occupies exactly one request line, so the index-to-result mapping
	// the resume logic depends on cannot desync — a hostile entry becomes
	// a per-item error, not a shifted stream.
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriter(pw)
		for _, fn := range fns {
			b, err := json.Marshal(fn)
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			if _, err := bw.Write(append(b, '\n')); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		if err := bw.Flush(); err != nil {
			pw.CloseWithError(err)
			return
		}
		pw.Close()
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, pr)
	if err != nil {
		pr.Close()
		return 0, err
	}
	req.Header.Set("Content-Type", api.NDJSONContentType)
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, &streamError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if retryableStatus(resp.StatusCode) {
			return 0, &streamError{fmt.Errorf("status %d: %s", resp.StatusCode, raw)}
		}
		return 0, decodeAPIError(resp.StatusCode, raw)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	delivered := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		// A line without "function" but with "error" is the server's
		// terminal error envelope — the stream is over.
		var probe struct {
			Function *string    `json:"function"`
			Error    *api.Error `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			return delivered, fmt.Errorf("client: undecodable stream line: %w", err)
		}
		if probe.Function == nil && probe.Error != nil {
			return delivered, probe.Error
		}
		if delivered >= len(fns) {
			return delivered, fmt.Errorf("client: server answered %d lines for %d functions", delivered+1, len(fns))
		}
		if err := deliver(delivered, []byte(line)); err != nil {
			return delivered + 1, err
		}
		delivered++
	}
	if err := sc.Err(); err != nil {
		return delivered, &streamError{err}
	}
	if delivered < len(fns) {
		// The server closed cleanly but short — treat as a dropped
		// connection and resume from the boundary.
		return delivered, &streamError{fmt.Errorf("stream ended after %d of %d results", delivered, len(fns))}
	}
	return delivered, nil
}
