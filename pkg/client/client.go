// Package client is the official Go client of the npnserve /v2 API —
// the one HTTP client the repository itself uses (replica proxy mode,
// examples/serve, the cmd-level end-to-end tests) and the one external
// callers should embed. It speaks the typed envelopes of internal/api,
// decodes the machine-readable error taxonomy into *api.Error values,
// retries transient transport failures, streams NDJSON batches with
// mid-stream resume, and replays witness certificates locally.
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.Insert(ctx, []string{"cafef00dcafef00d"})
//	cls, err := c.Classify(ctx, []string{"f00dcafef00dcafe"})
//	for _, it := range cls.Results {
//		if it.Hit {
//			err := client.ReplayWitness(it) // certify τ(rep) = function
//		}
//	}
//
// Errors: any non-2xx /v2 response decodes into an *api.Error, so callers
// can switch on its stable Code (api.CodeBadHex, api.CodeReadOnly, ...).
// Per-item errors inside 200 batch responses are on the items themselves.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/tt"
)

// DefaultTimeout is the whole-request timeout of the default HTTP client.
const DefaultTimeout = 30 * time.Second

// MaxRetryAfter caps how long the client honors a server's Retry-After
// before giving up on the attempt budget instead: a server asking for a
// longer pause than this is treated as unavailable and its error is
// returned to the caller, who owns long waits.
const MaxRetryAfter = 10 * time.Second

// Client is a connection to one npnserve-compatible server. It is safe
// for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	apiKey  string
	// jsonOnly pins the JSON transport (WithJSONTransport); binaryOff
	// latches once a server proves it does not speak the binary frame.
	jsonOnly  bool
	binaryOff atomic.Bool
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a failed request is retried beyond the
// first attempt. Only transport errors and 502/503/504 responses are
// retried; every API operation here is idempotent (insert included — the
// store dedups by exact table), so retries are always safe.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base delay between retries (attempt k waits
// k*backoff). Zero disables the delay.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithAPIKey attaches an API key: every request carries it as
// "Authorization: Bearer <key>", the credential a hardened npnserve
// (-keys/-key) authenticates and meters quotas by.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithJSONTransport pins Classify and Insert to the JSON envelope,
// disabling the binary-frame negotiation. Useful against intermediaries
// that inspect bodies, or when debugging with text-only tooling.
func WithJSONTransport() Option { return func(c *Client) { c.jsonOnly = true } }

// New returns a client for the server at base (e.g. "http://host:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: DefaultTimeout},
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the server base URL.
func (c *Client) Base() string { return c.base }

// Classify looks up a batch of hex truth tables via POST /v2/classify.
// Per-item failures are on the returned items; the error return is for
// envelope-level failures only. When every function's arity is
// unambiguous the batch travels as a binary frame (docs/WIRE.md),
// falling back to the JSON envelope — permanently, after one refusal —
// against servers that do not speak it.
func (c *Client) Classify(ctx context.Context, fns []string) (*api.ClassifyResponse, error) {
	if c.useBinary() {
		if fs, ok := parseBinaryBatch(fns); ok {
			out, fallback, err := c.classifyBinary(ctx, fns, fs)
			if err == nil {
				return out, nil
			}
			if !fallback {
				return nil, err
			}
		}
	}
	var out api.ClassifyResponse
	if err := c.postJSON(ctx, "/v2/classify", api.BatchRequest{Functions: fns}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert inserts a batch of hex truth tables via POST /v2/insert,
// negotiating the transport exactly as Classify does.
func (c *Client) Insert(ctx context.Context, fns []string) (*api.InsertResponse, error) {
	if c.useBinary() {
		if fs, ok := parseBinaryBatch(fns); ok {
			out, fallback, err := c.insertBinary(ctx, fns, fs)
			if err == nil {
				return out, nil
			}
			if !fallback {
				return nil, err
			}
		}
	}
	var out api.InsertResponse
	if err := c.postJSON(ctx, "/v2/insert", api.BatchRequest{Functions: fns}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MapParams mirror the query parameters of POST /v2/map.
type MapParams struct {
	K      int    // 0 = server default (6)
	Mode   string // "", "depth" or "area"
	Cuts   int    // 0 = server default (8)
	Insert bool   // insert discovered LUT classes into the store
}

func (p MapParams) query() string {
	q := url.Values{}
	if p.K != 0 {
		q.Set("k", strconv.Itoa(p.K))
	}
	if p.Mode != "" {
		q.Set("mode", p.Mode)
	}
	if p.Cuts != 0 {
		q.Set("cuts", strconv.Itoa(p.Cuts))
	}
	if p.Insert {
		q.Set("insert", "true")
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Map uploads an ASCII-AIGER circuit to POST /v2/map and returns the
// functionally-verified k-LUT mapping with its NPN class census.
func (c *Client) Map(ctx context.Context, circuit io.Reader, p MapParams) (*api.MapResponse, error) {
	body, err := io.ReadAll(circuit)
	if err != nil {
		return nil, err
	}
	status, resp, err := c.do(ctx, http.MethodPost, "/v2/map"+p.query(), "text/plain", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, decodeAPIError(status, resp)
	}
	var out api.MapResponse
	if err := json.Unmarshal(resp, &out); err != nil {
		return nil, fmt.Errorf("client: decoding map response: %w", err)
	}
	return &out, nil
}

// Stats fetches GET /v2/stats. The body shape depends on the server's
// role (single arity, federated, follower), so it is returned raw for the
// caller to decode into the matching stats type.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	return c.getRawJSON(ctx, "/v2/stats")
}

// Spec fetches the server's self-description from GET /v2/spec.
func (c *Client) Spec(ctx context.Context) (*api.Spec, error) {
	raw, err := c.getRawJSON(ctx, "/v2/spec")
	if err != nil {
		return nil, err
	}
	var s api.Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("client: decoding spec: %w", err)
	}
	return &s, nil
}

// Compact triggers POST /v2/compact (federated primaries only) and
// returns the per-arity report.
func (c *Client) Compact(ctx context.Context) (json.RawMessage, error) {
	status, body, err := c.do(ctx, http.MethodPost, "/v2/compact", "application/json", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, decodeAPIError(status, body)
	}
	return body, nil
}

// Healthz fetches GET /healthz, returning the status code alongside the
// body: a follower past its staleness gate answers 503 with a body that
// is still well-formed. It deliberately bypasses the retry policy — a
// probe that retried 503s would mask and delay exactly the state it
// exists to surface.
func (c *Client) Healthz(ctx context.Context) (int, json.RawMessage, error) {
	status, _, body, err := c.once(ctx, http.MethodGet, "/healthz", "", "", nil)
	return status, body, err
}

// Get is the raw GET escape hatch: one request (with retries) against an
// arbitrary path, returning status and body. It exists so components that
// relay /v1 traffic byte-for-byte (the follower proxy) still route every
// request through this client.
func (c *Client) Get(ctx context.Context, path string) (int, []byte, error) {
	return c.do(ctx, http.MethodGet, path, "", nil)
}

// Post is the raw POST escape hatch, the write-side twin of Get.
func (c *Client) Post(ctx context.Context, path, contentType string, body []byte) (int, []byte, error) {
	return c.do(ctx, http.MethodPost, path, contentType, body)
}

// getRawJSON GETs a path and returns the body, decoding error envelopes.
func (c *Client) getRawJSON(ctx context.Context, path string) (json.RawMessage, error) {
	status, body, err := c.do(ctx, http.MethodGet, path, "", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, decodeAPIError(status, body)
	}
	return body, nil
}

// postJSON posts a JSON body and decodes a 200 JSON response into out.
func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	status, body, err := c.do(ctx, http.MethodPost, path, "application/json", b)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return decodeAPIError(status, body)
	}
	return json.Unmarshal(body, out)
}

// do issues one request with the retry policy: transport errors and
// 502/503/504 are retried up to c.retries times with linear backoff. A
// 429 is retried only when the server names a Retry-After the client can
// afford (≤ MaxRetryAfter) — the pause is the server's number, not the
// backoff schedule — otherwise it is returned to the caller at once so
// quota exhaustion is visible instead of silently amplified.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) (int, []byte, error) {
	return c.doAccept(ctx, method, path, contentType, "", body)
}

// doAccept is do with an explicit Accept header — the binary transport
// negotiates the response encoding through it.
func (c *Client) doAccept(ctx context.Context, method, path, contentType, accept string, body []byte) (int, []byte, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, time.Duration(attempt)*c.backoff); err != nil {
				return 0, nil, err
			}
		}
		status, hdr, respBody, err := c.once(ctx, method, path, contentType, accept, body)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return 0, nil, err
			}
			continue
		}
		if status == http.StatusTooManyRequests && attempt < c.retries {
			wait, ok := retryAfter(hdr)
			if !ok {
				return status, respBody, nil
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return 0, nil, err
			}
			lastErr = fmt.Errorf("client: %s %s: status %d", method, path, status)
			continue
		}
		if retryableStatus(status) && attempt < c.retries {
			lastErr = fmt.Errorf("client: %s %s: status %d", method, path, status)
			continue
		}
		return status, respBody, nil
	}
	return 0, nil, lastErr
}

// retryAfter reads a delay-seconds Retry-After header, reporting whether
// the wait is one worth taking (present, parseable, ≤ MaxRetryAfter).
// HTTP-date values are not produced by npnserve and are not parsed.
func retryAfter(hdr http.Header) (time.Duration, bool) {
	v := hdr.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if d > MaxRetryAfter {
		return 0, false
	}
	return d, true
}

func (c *Client) once(ctx context.Context, method, path, contentType, accept string, body []byte) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	// Cross-hop trace propagation: a caller holding a traced request
	// context (the follower proxy re-asking its primary) stamps the
	// request ID and the active span's coordinates onto the outgoing
	// request, so the primary's trace records which remote span fathered
	// it. Both are no-ops outside a traced request.
	if id := obs.RequestIDFromContext(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	if parent := obs.TraceParent(ctx); parent != "" {
		req.Header.Set(obs.TraceParentHeader, parent)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

func retryableStatus(status int) bool {
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeAPIError turns a non-2xx body into an *api.Error when it carries
// the /v2 envelope, or a plain error otherwise (e.g. a /v1 shim body).
func decodeAPIError(status int, body []byte) error {
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		return env.Error
	}
	return fmt.Errorf("client: status %d: %s", status, bytes.TrimSpace(body))
}

// ReplayWitness certifies one classify hit locally: it decodes the wire
// witness τ and checks τ(rep) = function, so a client never has to trust
// the server's matcher. Items that are misses or carry errors fail.
func ReplayWitness(it api.ClassifyItem) error {
	if it.Error != nil {
		return fmt.Errorf("client: item %q carries error %s", it.Function, it.Error.Code)
	}
	if !it.Hit || it.Witness == nil {
		return fmt.Errorf("client: item %q is not a hit", it.Function)
	}
	tr, err := it.Witness.Transform()
	if err != nil {
		return fmt.Errorf("client: witness for %q: %w", it.Function, err)
	}
	n := len(it.Witness.Perm)
	rep, err := tt.FromHex(n, it.Rep)
	if err != nil {
		return fmt.Errorf("client: rep for %q: %w", it.Function, err)
	}
	fn, err := tt.FromHex(n, it.Function)
	if err != nil {
		return fmt.Errorf("client: function %q: %w", it.Function, err)
	}
	if !tr.Apply(rep).Equal(fn) {
		return fmt.Errorf("client: witness for %q does not verify", it.Function)
	}
	return nil
}
