package client

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strconv"

	"context"

	"repro/internal/obs"
)

// TraceQuery filters the flight-recorder listing: MinMillis keeps only
// traces at least that slow, Route keeps only one route pattern (exact
// match against the mux pattern, e.g. "/v2/insert"). Zero values mean
// no filter.
type TraceQuery struct {
	MinMillis float64
	Route     string
}

func (q TraceQuery) query() string {
	v := url.Values{}
	if q.MinMillis > 0 {
		v.Set("min_ms", strconv.FormatFloat(q.MinMillis, 'f', -1, 64))
	}
	if q.Route != "" {
		v.Set("route", q.Route)
	}
	if len(v) == 0 {
		return ""
	}
	return "?" + v.Encode()
}

// Traces lists the server's retained request traces, newest first, from
// GET /v2/debug/traces. The endpoint exists only on servers started
// with tracing enabled (npnserve's -trace flag); elsewhere the 404
// decodes into the usual *api.Error.
func (c *Client) Traces(ctx context.Context, q TraceQuery) (*obs.TraceList, error) {
	raw, err := c.getRawJSON(ctx, "/v2/debug/traces"+q.query())
	if err != nil {
		return nil, err
	}
	var out obs.TraceList
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("client: decoding trace list: %w", err)
	}
	return &out, nil
}

// Trace fetches one retained trace's full span tree by request ID from
// GET /v2/debug/traces/{id}. A trace that was sampled out or evicted
// from the ring answers not_found/404.
func (c *Client) Trace(ctx context.Context, id string) (*obs.TraceDetail, error) {
	raw, err := c.getRawJSON(ctx, "/v2/debug/traces/"+url.PathEscape(id))
	if err != nil {
		return nil, err
	}
	var out obs.TraceDetail
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("client: decoding trace %q: %w", id, err)
	}
	return &out, nil
}
