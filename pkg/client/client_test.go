// The pkg/client round-trip suite: the official client against every
// server role it claims to speak to — a single-arity service, a
// federated registry, and a replication follower in both -follow-modes —
// including mid-batch per-item errors, NDJSON streaming, and streaming
// resume across a dropped connection.
package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/federation"
	"repro/internal/npn"
	"repro/internal/replica"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tt"
	"repro/internal/wal"
	"repro/pkg/client"
)

func newSingle(t *testing.T, n int) *client.Client {
	t.Helper()
	svc := service.New(store.New(n, store.Options{Shards: 4}), service.Options{Workers: 2})
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(srv.Close)
	return client.New(srv.URL)
}

func newFederated(t *testing.T) *client.Client {
	t.Helper()
	reg, err := federation.New(4, 8, federation.Options{Store: store.Options{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(federation.NewHandler(reg))
	t.Cleanup(srv.Close)
	return client.New(srv.URL)
}

// newPrimaryAndFollower builds a durable primary (per-append fsync, so a
// SyncOnce immediately sees every acknowledged insert) and a follower of
// it in the given mode. The primary's server is returned so tests can
// kill it.
func newPrimaryAndFollower(t *testing.T, mode replica.Mode) (pc, fc *client.Client, fol *replica.Follower, psrv *httptest.Server) {
	t.Helper()
	preg, err := federation.New(4, 6, federation.Options{
		Store: store.Options{Shards: 4},
		Data:  t.TempDir(),
		WAL:   wal.Options{SegmentBytes: 1 << 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { preg.Close() })
	psrv = httptest.NewServer(federation.NewHandler(preg))
	t.Cleanup(psrv.Close)

	freg, err := federation.New(4, 6, federation.Options{
		Store: store.Options{Shards: 4, ReadOnly: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	fol = replica.New(freg, replica.Options{Primary: psrv.URL, Mode: mode})
	fsrv := httptest.NewServer(replica.NewHandler(fol))
	t.Cleanup(fsrv.Close)
	return client.New(psrv.URL), client.New(fsrv.URL), fol, psrv
}

// roundTrip drives the shared correctness scenario against any server:
// insert a batch, classify NPN variants, demand identity equality and a
// locally-replayable witness, and check mid-batch per-item errors.
func roundTrip(t *testing.T, c *client.Client, fns []*tt.TT, rng *rand.Rand) {
	t.Helper()
	ctx := context.Background()
	hexes := make([]string, len(fns))
	for i, f := range fns {
		hexes[i] = f.Hex()
	}
	ins, err := c.Insert(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Errors != 0 || len(ins.Results) != len(fns) {
		t.Fatalf("insert %+v", ins)
	}

	variants := make([]string, len(fns))
	for i, f := range fns {
		variants[i] = npn.RandomTransform(f.NumVars(), rng).Apply(f).Hex()
	}
	cls, err := c.Classify(ctx, variants)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit || r.Class != ins.Results[i].Class || *r.Index != ins.Results[i].Index {
			t.Fatalf("variant %d: %+v, inserted (%s,%d)", i, r, ins.Results[i].Class, ins.Results[i].Index)
		}
		if err := client.ReplayWitness(r); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}

	// Mid-batch per-item error: the bad middle entry must not take the
	// good neighbors down.
	mixed, err := c.Classify(ctx, []string{variants[0], "zz!", variants[len(variants)-1]})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Errors != 1 || mixed.Results[1].Error == nil {
		t.Fatalf("mid-batch error: %+v", mixed)
	}
	if !mixed.Results[0].Hit || !mixed.Results[2].Hit {
		t.Fatalf("good neighbors failed: %+v", mixed.Results)
	}
}

func TestSingleArityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	c := newSingle(t, 5)
	var fns []*tt.TT
	for i := 0; i < 6; i++ {
		fns = append(fns, tt.Random(5, rng))
	}
	roundTrip(t, c, fns, rng)

	// Single-arity resolution: a wrong-length table is per-item
	// arity_out_of_range.
	cls, err := c.Classify(context.Background(), []string{"1ee1"})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Results[0].Error == nil || cls.Results[0].Error.Code != api.CodeArityOutOfRange {
		t.Fatalf("wrong-length item: %+v", cls.Results[0])
	}

	spec, err := c.Spec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Role != "single" {
		t.Fatalf("spec role %q", spec.Role)
	}
	raw, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var st service.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Arity != 5 || st.Classes == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFederatedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	c := newFederated(t)
	var fns []*tt.TT
	for n := 4; n <= 8; n++ {
		fns = append(fns, tt.Random(n, rng), tt.Random(n, rng))
	}
	roundTrip(t, c, fns, rng)
}

func TestFollowerLocalMode(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(83))
	pc, fc, fol, _ := newPrimaryAndFollower(t, replica.ModeLocal)

	var hexes []string
	for n := 4; n <= 6; n++ {
		hexes = append(hexes, tt.Random(n, rng).Hex())
	}
	ins, err := pc.Insert(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// Replicated classes hit locally with the primary's identity.
	cls, err := fc.Classify(ctx, hexes)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cls.Results {
		if !r.Hit || r.Class != ins.Results[i].Class || *r.Index != ins.Results[i].Index {
			t.Fatalf("follower item %d: %+v", i, r)
		}
		if err := client.ReplayWitness(r); err != nil {
			t.Fatal(err)
		}
	}

	// A local-mode follower refuses writes with the stable code.
	_, err = fc.Insert(ctx, []string{tt.Random(4, rng).Hex()})
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodeReadOnly {
		t.Fatalf("local-mode insert error: %v", err)
	}
	// ...and answers misses locally as misses.
	miss, err := fc.Classify(ctx, []string{tt.Random(6, rng).Hex()})
	if err != nil {
		t.Fatal(err)
	}
	if miss.Results[0].Hit {
		t.Fatal("unreplicated class hit in local mode")
	}
}

func TestFollowerProxyMode(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(84))
	pc, fc, fol, psrv := newPrimaryAndFollower(t, replica.ModeProxy)

	// An insert through the follower is forwarded to the primary.
	f := tt.Random(5, rng)
	ins, err := fc.Insert(ctx, []string{f.Hex()})
	if err != nil {
		t.Fatal(err)
	}
	if ins.Errors != 0 || !ins.Results[0].New {
		t.Fatalf("proxied insert %+v", ins)
	}
	direct, err := pc.Classify(ctx, []string{f.Hex()})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Results[0].Hit || direct.Results[0].Class != ins.Results[0].Class {
		t.Fatalf("insert did not land on the primary: %+v", direct.Results[0])
	}

	// A classify miss on the not-yet-synced follower is re-asked of the
	// primary and merged: the fresh class still hits, witness and all.
	g := tt.Random(6, rng)
	if _, err := pc.Insert(ctx, []string{g.Hex()}); err != nil {
		t.Fatal(err)
	}
	variant := npn.RandomTransform(6, rng).Apply(g).Hex()
	cls, err := fc.Classify(ctx, []string{variant})
	if err != nil {
		t.Fatal(err)
	}
	if !cls.Results[0].Hit {
		t.Fatalf("proxy-merged miss did not hit: %+v", cls.Results[0])
	}
	if err := client.ReplayWitness(cls.Results[0]); err != nil {
		t.Fatal(err)
	}

	// Per-item errors forward too: a refused item from the primary stays
	// a per-item error at the follower.
	mixed, err := fc.Insert(ctx, []string{tt.Random(4, rng).Hex(), "zzzz!"})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Errors != 1 || mixed.Results[1].Error == nil || mixed.Results[0].Error != nil {
		t.Fatalf("proxied per-item errors: %+v", mixed)
	}

	// Sync what exists, then kill the primary: reads degrade gracefully
	// to local answers, writes answer primary_unreachable.
	if err := fol.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	psrv.Close()
	after, err := fc.Classify(ctx, []string{f.Hex(), tt.Random(4, rng).Hex()})
	if err != nil {
		t.Fatalf("reads must survive a dead primary: %v", err)
	}
	if !after.Results[0].Hit {
		t.Fatal("replicated class lost after primary death")
	}
	if after.Results[1].Hit {
		t.Fatal("phantom hit after primary death")
	}
	_, err = fc.Insert(ctx, []string{tt.Random(4, rng).Hex()})
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodePrimaryUnreachable {
		t.Fatalf("insert with dead primary: %v", err)
	}
}

// TestStreamRoundTrip pushes a batch bigger than one server chunk
// through both NDJSON endpoints and checks order, completeness and
// inline per-item errors.
func TestStreamRoundTrip(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(85))
	c := newFederated(t)

	n := api.StreamChunk + 37
	fns := make([]string, n)
	for i := range fns {
		fns[i] = tt.Random(4+(i%3), rng).Hex()
	}
	badAt := api.StreamChunk + 3
	fns[badAt] = "zzzz"

	got := 0
	err := c.InsertStream(ctx, fns, func(i int, item api.InsertItem) error {
		if i != got {
			t.Fatalf("insert stream out of order: got index %d, want %d", i, got)
		}
		got++
		if i == badAt {
			if item.Error == nil || item.Error.Code != api.CodeBadHex {
				t.Fatalf("bad item %d: %+v", i, item)
			}
		} else if item.Error != nil {
			t.Fatalf("item %d: %+v", i, item.Error)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("insert stream delivered %d of %d", got, n)
	}

	got = 0
	err = c.ClassifyStream(ctx, fns, func(i int, item api.ClassifyItem) error {
		got++
		if i == badAt {
			return nil
		}
		if !item.Hit {
			t.Fatalf("item %d missed after insert stream", i)
		}
		return client.ReplayWitness(item)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("classify stream delivered %d of %d", got, n)
	}
}

// truncating wraps a handler and serves only the first cutLines response
// lines of the first streaming request, simulating a connection that
// drops mid-stream; later requests pass through untouched.
type truncating struct {
	inner    http.Handler
	cutLines int

	mu       sync.Mutex
	requests []int // functions per streaming request body
}

func (tr *truncating) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasSuffix(r.URL.Path, "/stream") {
		tr.inner.ServeHTTP(w, r)
		return
	}
	body, _ := io.ReadAll(r.Body)
	nFns := len(strings.Fields(string(body)))
	tr.mu.Lock()
	tr.requests = append(tr.requests, nFns)
	first := len(tr.requests) == 1
	tr.mu.Unlock()

	rec := httptest.NewRecorder()
	req := r.Clone(r.Context())
	req.Body = io.NopCloser(strings.NewReader(string(body)))
	tr.inner.ServeHTTP(rec, req)
	if !first {
		w.Header().Set("Content-Type", rec.Header().Get("Content-Type"))
		w.WriteHeader(rec.Code)
		io.Copy(w, rec.Body)
		return
	}
	lines := strings.SplitAfter(rec.Body.String(), "\n")
	w.Header().Set("Content-Type", rec.Header().Get("Content-Type"))
	w.WriteHeader(rec.Code)
	for i := 0; i < tr.cutLines && i < len(lines); i++ {
		io.WriteString(w, lines[i])
	}
	// Returning here closes the response short of one line per input:
	// the client must notice and resume from the boundary.
}

// TestStreamResume: the first streaming attempt dies after 10 result
// lines; the client resumes with the unanswered suffix and the caller
// sees every index exactly once.
func TestStreamResume(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(86))
	reg, err := federation.New(4, 6, federation.Options{Store: store.Options{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	tr := &truncating{inner: federation.NewHandler(reg), cutLines: 10}
	srv := httptest.NewServer(tr)
	t.Cleanup(srv.Close)
	c := client.New(srv.URL, client.WithBackoff(time.Millisecond))

	n := 25
	fns := make([]string, n)
	for i := range fns {
		fns[i] = tt.Random(5, rng).Hex()
	}
	seen := make([]bool, n)
	err = c.InsertStream(ctx, fns, func(i int, item api.InsertItem) error {
		if seen[i] {
			return fmt.Errorf("index %d delivered twice", i)
		}
		seen[i] = true
		if item.Function != fns[i] {
			return fmt.Errorf("index %d answered for %q, want %q", i, item.Function, fns[i])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d never delivered", i)
		}
	}
	if len(tr.requests) != 2 || tr.requests[0] != n || tr.requests[1] != n-10 {
		t.Fatalf("resume requests %v, want [%d %d]", tr.requests, n, n-10)
	}
}

// flaky503 fails the first reqFails requests with 503, then passes
// through.
type flaky503 struct {
	inner http.Handler
	mu    sync.Mutex
	fails int
}

func (f *flaky503) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	fail := f.fails > 0
	if fail {
		f.fails--
	}
	f.mu.Unlock()
	if fail {
		http.Error(w, "try later", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestRetries: transient 503s are retried within the budget and surface
// after it.
func TestRetries(t *testing.T) {
	ctx := context.Background()
	reg, err := federation.New(4, 6, federation.Options{Store: store.Options{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	fl := &flaky503{inner: federation.NewHandler(reg), fails: 2}
	srv := httptest.NewServer(fl)
	t.Cleanup(srv.Close)

	c := client.New(srv.URL, client.WithRetries(2), client.WithBackoff(time.Millisecond))
	if _, err := c.Insert(ctx, []string{"1ee1"}); err != nil {
		t.Fatalf("insert did not survive 2 flaps: %v", err)
	}

	fl.mu.Lock()
	fl.fails = 3
	fl.mu.Unlock()
	c0 := client.New(srv.URL, client.WithRetries(0), client.WithBackoff(time.Millisecond))
	if _, err := c0.Insert(ctx, []string{"1ee1"}); err == nil {
		t.Fatal("no-retry client swallowed a 503")
	}
}

// TestEnvelopeErrorsDecode: non-2xx /v2 responses decode into *api.Error
// with their stable codes.
func TestEnvelopeErrorsDecode(t *testing.T) {
	ctx := context.Background()
	c := newFederated(t)
	_, err := c.Classify(ctx, nil)
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodeBadRequest {
		t.Fatalf("empty batch error: %v", err)
	}
	_, err = c.Compact(ctx)
	if e, ok := err.(*api.Error); !ok || e.Code != api.CodeNotDurable {
		t.Fatalf("compact on memory registry: %v", err)
	}
}
