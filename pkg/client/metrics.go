package client

import (
	"bytes"
	"context"
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// Metrics scrapes GET /metrics and parses the Prometheus text exposition
// into a queryable snapshot: Value/Sum/Has for individual series, Names
// for the inventory, Quantile for latency estimates out of the histogram
// buckets. The endpoint exists only on servers started with metrics
// enabled (npnserve's -metrics flag, on by default); elsewhere the 404
// decodes into the usual *api.Error.
func (c *Client) Metrics(ctx context.Context) (*obs.Scrape, error) {
	status, body, err := c.do(ctx, http.MethodGet, "/metrics", "", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, decodeAPIError(status, body)
	}
	s, err := obs.Parse(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: parsing metrics exposition: %w", err)
	}
	return s, nil
}
