package client

import (
	"context"
	"fmt"
	"math/bits"
	"net/http"

	"repro/internal/api"
	"repro/internal/tt"
)

// The client auto-negotiates the length-framed binary transport of
// docs/WIRE.md: when every function in a batch names its arity
// unambiguously, Classify and Insert send a binary frame and ask for a
// binary response. The first proof that the server does not speak it —
// an unsupported_media_type refusal, or a 200 that is not a binary
// frame — latches a permanent JSON fallback for the client's lifetime,
// so one round trip is the whole cost of probing an older server.

// useBinary reports whether the binary transport is still worth trying.
func (c *Client) useBinary() bool { return !c.jsonOnly && !c.binaryOff.Load() }

// parseBinaryBatch parses a hex batch into truth tables with the arity
// each hex length implies. It reports ok=false — meaning "send this
// batch as JSON" — when any function cannot travel in a binary frame
// with full fidelity: a one-digit table (ambiguous across arities 0–2),
// a length that is not a power of two, an arity beyond tt.MaxVars, or
// hex that does not parse (the JSON path owns the canonical bad_hex
// error). An empty batch also goes JSON for its canonical error.
func parseBinaryBatch(fns []string) ([]*tt.TT, bool) {
	if len(fns) == 0 {
		return nil, false
	}
	fs := make([]*tt.TT, len(fns))
	for i, s := range fns {
		l := len(s)
		if l < 2 || l&(l-1) != 0 {
			return nil, false
		}
		n := bits.TrailingZeros(uint(l)) + 2
		if n > tt.MaxVars {
			return nil, false
		}
		f, err := tt.FromHex(n, s)
		if err != nil {
			return nil, false
		}
		fs[i] = f
	}
	return fs, true
}

// postBinary sends one binary-framed batch and returns the binary
// response body. fallback=true (always alongside a non-nil error) means
// the server does not speak the transport and the caller should retry
// the same batch as JSON — the permanent fallback flag is already set.
func (c *Client) postBinary(ctx context.Context, path string, fs []*tt.TT) (body []byte, fallback bool, err error) {
	frame := api.EncodeBinaryRequest(fs, false)
	status, resp, err := c.doAccept(ctx, http.MethodPost, path,
		api.BinaryContentType, api.BinaryContentType, frame)
	if err != nil {
		return nil, false, err
	}
	if status != http.StatusOK {
		err := decodeAPIError(status, resp)
		if apiErr, ok := err.(*api.Error); ok && apiErr.Code == api.CodeUnsupportedMediaType {
			c.binaryOff.Store(true)
			return nil, true, err
		}
		return nil, false, err
	}
	// A 200 that does not open with the frame magic is a server (or
	// intermediary) that ignored the negotiation and answered JSON.
	if len(resp) < 2 || resp[0] != 'N' || resp[1] != 'B' {
		c.binaryOff.Store(true)
		return nil, true, fmt.Errorf("client: %s: 200 response is not a binary frame", path)
	}
	return resp, false, nil
}

// classifyBinary runs one classify batch over the binary transport and
// reshapes the decoded frame into the same ClassifyResponse the JSON
// path returns, echoing the caller's own hex strings.
func (c *Client) classifyBinary(ctx context.Context, fns []string, fs []*tt.TT) (*api.ClassifyResponse, bool, error) {
	body, fallback, err := c.postBinary(ctx, "/v2/classify", fs)
	if err != nil {
		return nil, fallback, err
	}
	items, err := api.DecodeBinaryClassify(body)
	if err != nil {
		return nil, false, fmt.Errorf("client: decoding binary classify response: %w", err)
	}
	if len(items) != len(fns) {
		return nil, false, fmt.Errorf("client: binary classify response has %d items, want %d", len(items), len(fns))
	}
	out := &api.ClassifyResponse{Results: make([]api.ClassifyItem, len(items))}
	for i, it := range items {
		if it.Err != nil {
			out.Results[i] = api.ClassifyItem{Function: fns[i], Error: it.Err}
			out.Errors++
			continue
		}
		ci := api.ClassifyItem{Function: fns[i], Hit: it.Hit, Class: api.KeyHex(it.Key)}
		if it.Hit {
			idx := it.Index
			ci.Index = &idx
			ci.Rep = it.Rep.Hex()
			ci.Witness = api.NewWitness(it.Witness)
		}
		out.Results[i] = ci
	}
	return out, false, nil
}

// insertBinary is classifyBinary's insert twin.
func (c *Client) insertBinary(ctx context.Context, fns []string, fs []*tt.TT) (*api.InsertResponse, bool, error) {
	body, fallback, err := c.postBinary(ctx, "/v2/insert", fs)
	if err != nil {
		return nil, fallback, err
	}
	items, err := api.DecodeBinaryInsert(body)
	if err != nil {
		return nil, false, fmt.Errorf("client: decoding binary insert response: %w", err)
	}
	if len(items) != len(fns) {
		return nil, false, fmt.Errorf("client: binary insert response has %d items, want %d", len(items), len(fns))
	}
	out := &api.InsertResponse{Results: make([]api.InsertItem, len(items))}
	for i, it := range items {
		if it.Err != nil {
			out.Results[i] = api.InsertItem{Function: fns[i], Error: it.Err}
			out.Errors++
			continue
		}
		out.Results[i] = api.InsertItem{
			Function: fns[i],
			Class:    api.KeyHex(it.Key),
			Index:    it.Index,
			New:      it.New,
		}
	}
	return out, false, nil
}
