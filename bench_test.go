// Package repro's root benchmark suite regenerates the paper's evaluation:
// one benchmark per table/figure (Tables II–III, Figs. 4–5) plus the design
// ablations called out in DESIGN.md (scalar vs bit-sliced sensitivity,
// naive vs spectral OSDV, exhaustive canon vs matcher). Run with:
//
//	go test -bench=. -benchmem
//
// The npnbench command produces the paper-formatted tables; these benchmarks
// measure the per-function costs behind them.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/baseline"
	"repro/internal/bdd"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cut"
	"repro/internal/decomp"
	"repro/internal/gen"
	"repro/internal/mapper"
	"repro/internal/match"
	"repro/internal/npn"
	"repro/internal/service"
	"repro/internal/sig"
	"repro/internal/store"
	"repro/internal/tt"
	"repro/internal/wal"
)

var (
	workloadOnce sync.Once
	workloads    map[int][]*tt.TT
)

// circuitWorkload returns a cached deduplicated cut-function workload.
func circuitWorkload(n int) []*tt.TT {
	workloadOnce.Do(func() {
		workloads = make(map[int][]*tt.TT)
		for _, k := range []int{4, 5, 6, 7, 8} {
			workloads[k] = bench.Workload(k, bench.WorkloadOpts{
				Kind: bench.WorkloadCircuit, MaxPerNode: 8, Seed: 1, MaxFuncs: 4000,
			})
		}
	})
	return workloads[n]
}

// BenchmarkTable2SignatureVectors measures per-function MSV key computation
// for each signature combination of Table II on the 6-variable circuit
// workload.
func BenchmarkTable2SignatureVectors(b *testing.B) {
	fs := circuitWorkload(6)
	for _, cfg := range bench.Table2Configs() {
		cfg := cfg
		cfg.FastOSDV = true
		b.Run(cfg.Enabled(), func(b *testing.B) {
			cls := core.New(6, cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cls.Hash(fs[i%len(fs)])
			}
		})
	}
}

// BenchmarkTable3Classifiers measures the per-function cost of every
// classifier column of Table III on the 6-variable circuit workload.
func BenchmarkTable3Classifiers(b *testing.B) {
	fs := circuitWorkload(6)
	b.Run("kitty-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := fs[i%len(fs)]
			npn.CanonWord(f.Word(), 6)
		}
	})
	for _, bl := range []*baseline.Classifier{
		baseline.NewHuang(), baseline.NewHierarchical(), baseline.NewHybrid(),
	} {
		bl := bl
		b.Run(bl.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bl.Key(fs[i%len(fs)])
			}
		})
	}
	b.Run("ours", func(b *testing.B) {
		cfg := core.ConfigAll()
		cfg.FastOSDV = true
		cls := core.New(6, cfg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cls.Hash(fs[i%len(fs)])
		}
	})
}

// BenchmarkFig4DiscriminatorSearch measures the exhaustive 4-variable scan
// behind Fig. 4 (one iteration = the whole 65536-function universe).
func BenchmarkFig4DiscriminatorSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig4(nil, true)
		if r.SplitByOIV == 0 {
			b.Fatal("Fig.4 phenomenon vanished")
		}
	}
}

// BenchmarkFig5Scaling measures end-to-end classification of a fixed-size
// consecutive-encoding workload, the paper's Fig. 5 streaming setting.
func BenchmarkFig5Scaling(b *testing.B) {
	for _, n := range []int{5, 7} {
		n := n
		fs := gen.Consecutive(n, 20000, 99)
		b.Run(map[int]string{5: "5bit-20k", 7: "7bit-20k"}[n], func(b *testing.B) {
			cfg := core.ConfigAll()
			cfg.FastOSDV = true
			for i := 0; i < b.N; i++ {
				cls := core.New(n, cfg)
				cls.NumClasses(fs)
			}
		})
	}
}

// BenchmarkFig5HybridBaseline is the comparison series of Fig. 5: the
// hybrid canonical-form baseline on the same stream.
func BenchmarkFig5HybridBaseline(b *testing.B) {
	for _, n := range []int{5, 7} {
		n := n
		fs := gen.Consecutive(n, 2000, 99)
		b.Run(map[int]string{5: "5bit-2k", 7: "7bit-2k"}[n], func(b *testing.B) {
			hyb := baseline.NewHybrid()
			for i := 0; i < b.N; i++ {
				hyb.NumClasses(fs)
			}
		})
	}
}

// BenchmarkAblationSensitivity compares the scalar and bit-sliced paths for
// the per-minterm sensitivity profile (DESIGN.md ablation 1).
func BenchmarkAblationSensitivity(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		n := n
		fs := gen.UniformRandom(n, 64, 5)
		e := sig.NewEngine(n)
		b.Run(map[int]string{6: "scalar-n6", 8: "scalar-n8", 10: "scalar-n10"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.SenProfileScalar(fs[i%len(fs)])
			}
		})
		b.Run(map[int]string{6: "bitsliced-n6", 8: "bitsliced-n8", 10: "bitsliced-n10"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.SenProfile(fs[i%len(fs)])
			}
		})
	}
}

// BenchmarkAblationOSDV compares the quadratic pair enumeration and the
// fast computation of OSDV (DESIGN.md ablation 2) — spectral (Krawtchouk)
// for large sensitivity classes, direct enumeration below the crossover.
func BenchmarkAblationOSDV(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		n := n
		fs := gen.UniformRandom(n, 32, 6)
		e := sig.NewEngine(n)
		b.Run(map[int]string{6: "naive-n6", 8: "naive-n8", 10: "naive-n10"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.OSDV01(fs[i%len(fs)])
			}
		})
		b.Run(map[int]string{6: "spectral-n6", 8: "spectral-n8", 10: "spectral-n10"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.OSDV01Fast(fs[i%len(fs)])
			}
		})
	}
}

// BenchmarkAblationBalancedPhase measures the extra cost of the balanced-
// function double-key computation (DESIGN.md ablation 3).
func BenchmarkAblationBalancedPhase(b *testing.B) {
	n := 8
	cfg := core.ConfigAll()
	cfg.FastOSDV = true
	cls := core.New(n, cfg)
	unb := tt.FromFunc(n, func(x int) bool { return x%5 == 0 }) // unbalanced
	bal := tt.FromFunc(n, func(x int) bool { return x&1 == 1 }) // balanced
	b.Run("unbalanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cls.KeyBytes(unb)
		}
	})
	b.Run("balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cls.KeyBytes(bal)
		}
	})
}

// BenchmarkAblationStrictKeys measures hash bucketing vs full-key bucketing
// (DESIGN.md ablation 4).
func BenchmarkAblationStrictKeys(b *testing.B) {
	fs := gen.UniformRandom(6, 4000, 8)
	for _, strict := range []bool{false, true} {
		strict := strict
		name := "hashed"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.ConfigAll()
			cfg.FastOSDV = true
			cfg.StrictKeys = strict
			for i := 0; i < b.N; i++ {
				core.New(6, cfg).NumClasses(fs)
			}
		})
	}
}

// BenchmarkSifting measures the semi-canonical sifting form — the cheap
// heuristic alternative to exhaustive canonicalization, usable at any n.
func BenchmarkSifting(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		n := n
		fs := gen.UniformRandom(n, 64, 11)
		b.Run(map[int]string{6: "n6", 8: "n8", 10: "n10"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				npn.SiftCanon(fs[i%len(fs)])
			}
		})
	}
}

// BenchmarkAblationRefinement compares the monolithic all-signature
// classifier against the staged refinement classifier that computes
// expensive vectors only inside ambiguous buckets.
func BenchmarkAblationRefinement(b *testing.B) {
	fs := circuitWorkload(7)
	b.Run("monolithic", func(b *testing.B) {
		cfg := core.ConfigAll()
		cfg.FastOSDV = true
		cfg.StrictKeys = true
		for i := 0; i < b.N; i++ {
			core.New(7, cfg).Classify(fs)
		}
	})
	b.Run("refined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ClassifyRefined(7, core.DefaultStages(), fs)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		cfg := core.ConfigAll()
		cfg.FastOSDV = true
		for i := 0; i < b.N; i++ {
			core.ClassifyParallel(7, cfg, fs, 0)
		}
	})
}

// BenchmarkExactCanon measures exhaustive canonicalization per function by
// arity — the kitty column cost model of Table III.
func BenchmarkExactCanon(b *testing.B) {
	for _, n := range []int{4, 5, 6} {
		n := n
		fs := gen.UniformRandom(n, 128, 9)
		b.Run(map[int]string{4: "n4", 5: "n5", 6: "n6"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := fs[i%len(fs)]
				npn.CanonWord(f.Word(), n)
			}
		})
	}
}

// BenchmarkMatcher measures the pairwise exact matcher on equivalent pairs
// (worst case: a witness must be found) at n = 8.
func BenchmarkMatcher(b *testing.B) {
	n := 8
	fs := gen.UniformRandom(n, 64, 10)
	m := match.NewMatcher(n)
	pairs := make([]*tt.TT, len(fs))
	for i, f := range fs {
		tr := npn.Identity(n)
		tr.Perm[0], tr.Perm[n-1] = uint8(n-1), 0
		tr.NegMask = 0b1010
		pairs[i] = tr.Apply(f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Equivalent(fs[i%len(fs)], pairs[i%len(fs)]); !ok {
			b.Fatal("pair not matched")
		}
	}
}

// BenchmarkMapper measures end-to-end LUT mapping of an arithmetic circuit.
func BenchmarkMapper(b *testing.B) {
	g := gen.ArrayMultiplier(6)
	for _, mode := range []mapper.Mode{mapper.Depth, mapper.Area} {
		mode := mode
		name := map[mapper.Mode]string{mapper.Depth: "depth", mapper.Area: "area"}[mode]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mapper.Map(g, mapper.Options{K: 6, Mode: mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBDD measures BDD construction from truth tables — the canonical
// representation the signature classifier avoids building.
func BenchmarkBDD(b *testing.B) {
	fs := gen.UniformRandom(10, 32, 12)
	b.Run("fromTT-n10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := bdd.New(10)
			m.FromTT(fs[i%len(fs)])
		}
	})
}

// BenchmarkDecompose measures disjoint-decomposition extraction.
func BenchmarkDecompose(b *testing.B) {
	fs := gen.CircuitWorkload(8, 8, 13)
	if len(fs) > 256 {
		fs = fs[:256]
	}
	b.Run("circuit-n8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			decomp.Decompose(fs[i%len(fs)])
		}
	})
}

// BenchmarkCutEnumeration measures the workload-extraction pipeline itself:
// cut enumeration plus per-cut truth tables over an arithmetic circuit.
func BenchmarkCutEnumeration(b *testing.B) {
	g := gen.ArrayMultiplier(6)
	b.Run("enumerate-k6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cuts := cut.Enumerate(g, cut.Options{K: 6, MaxPerNode: 8})
			cutEnumSink = len(cuts)
		}
	})
	b.Run("harvest-k5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fs := cut.Harvest(g, 5, cut.Options{K: 5, MaxPerNode: 8})
			cutEnumSink = len(fs)
		}
	})
}

var cutEnumSink int

// BenchmarkLookupCachedVsUncached isolates the representative-profile
// cache on the hot serve path: single-function Store.Lookup hits against a
// warm store, with the per-shard profile memo enabled (the default) versus
// disabled (the rebuild-per-query certification strategy the store served
// with before caching). Queries are NPN disguises of stored classes, so
// every lookup pays MSV hashing plus matcher certification; the cached
// mode builds each rep's profile once and the query's profile once per
// lookup, the uncached mode rebuilds the rep side per chain member and
// per output phase.
//
// Two key configurations are measured: "full" is the paper's complete MSV
// (hash-dominated, so the cache shows up as a moderate win), and
// "serving" is store.ServingConfig (the cheap OCV1+OIV key whose longer
// chains the profile cache is designed to make affordable — the cache is
// the difference between that config being a win or a loss). Results are
// recorded in BENCH_lookup.json.
//
// The allocation profile this benchmark reports is load-bearing: the hit
// path carries //npn:noalloc annotations that cmd/npnlint checks against
// escape analysis, and store.TestNoallocParity pins that annotation set
// to the same function list the AllocsPerRun gates measure.
func BenchmarkLookupCachedVsUncached(b *testing.B) {
	for _, n := range []int{6, 8} {
		fs := circuitWorkload(n)
		if len(fs) > 512 {
			fs = fs[:512]
		}
		// Disguised queries force real witness searches, not Equal fast paths.
		queries := make([]*tt.TT, len(fs))
		for i, f := range fs {
			tr := npn.Identity(n)
			tr.Perm[0], tr.Perm[n-1] = uint8(n-1), 0
			tr.NegMask = 0b0110
			tr.OutNeg = i%2 == 1
			queries[i] = tr.Apply(f)
		}
		for _, cfg := range []struct {
			name string
			c    core.Config
		}{
			{"full", core.Config{}},
			{"serving", store.ServingConfig()},
		} {
			for _, disabled := range []bool{true, false} {
				mode := map[bool]string{true: "uncached", false: "cached"}[disabled]
				b.Run(fmt.Sprintf("%s-%s-n%d", cfg.name, mode, n), func(b *testing.B) {
					st := store.New(n, store.Options{Config: cfg.c, DisableProfileCache: disabled})
					for _, f := range fs {
						st.Add(f)
					}
					// Warm pass so the cached mode measures steady-state hits,
					// not first-touch profile builds.
					for _, q := range queries {
						if _, _, _, _, ok := st.Lookup(q); !ok {
							b.Fatal("warm lookup missed")
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, _, _, _, ok := st.Lookup(queries[i%len(queries)]); !ok {
							b.Fatal("lookup missed")
						}
					}
				})
			}
		}
	}
}

// BenchmarkTransportClassify compares the two /v2/classify transports end
// to end through a real HTTP server: the JSON envelope versus the
// length-framed binary format of docs/WIRE.md, same warm single-arity
// service, same 16-function batch of NPN-disguised hits per request. Each
// sub-benchmark reports the payload sizes as req-B and resp-B metrics, so
// BENCH_lookup.json can record the bytes-on-wire delta next to the ns/op
// delta. The binary rows measure the full stack — codec, negotiation,
// handler, store — not the codec in isolation (that cost is bounded by
// TestBinaryCodecAllocs).
func BenchmarkTransportClassify(b *testing.B) {
	const batch = 16
	for _, n := range []int{6, 8} {
		fs := circuitWorkload(n)
		if len(fs) > batch {
			fs = fs[:batch]
		}
		svc := service.New(store.New(n, store.Options{Config: store.ServingConfig()}),
			service.Options{Workers: 2})
		for _, r := range svc.Insert(fs) {
			if r.Index < 0 {
				b.Fatal("insert refused")
			}
		}
		queries := make([]*tt.TT, len(fs))
		hexes := make([]string, len(fs))
		for i, f := range fs {
			tr := npn.Identity(n)
			tr.Perm[0], tr.Perm[n-1] = uint8(n-1), 0
			tr.NegMask = 0b0110
			tr.OutNeg = i%2 == 1
			queries[i] = tr.Apply(f)
			hexes[i] = queries[i].Hex()
		}
		srv := httptest.NewServer(service.NewHandler(svc))

		jsonBody, err := json.Marshal(api.BatchRequest{Functions: hexes})
		if err != nil {
			b.Fatal(err)
		}
		binBody := api.EncodeBinaryRequest(queries, false)

		for _, mode := range []struct {
			name        string
			contentType string
			accept      string
			body        []byte
		}{
			{"json", "application/json", "", jsonBody},
			{"binary", api.BinaryContentType, api.BinaryContentType, binBody},
		} {
			b.Run(fmt.Sprintf("%s-n%d-batch%d", mode.name, n, batch), func(b *testing.B) {
				post := func() int {
					req, err := http.NewRequest(http.MethodPost, srv.URL+"/v2/classify", bytes.NewReader(mode.body))
					if err != nil {
						b.Fatal(err)
					}
					req.Header.Set("Content-Type", mode.contentType)
					if mode.accept != "" {
						req.Header.Set("Accept", mode.accept)
					}
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						b.Fatal(err)
					}
					defer resp.Body.Close()
					body, err := io.ReadAll(resp.Body)
					if err != nil || resp.StatusCode != http.StatusOK {
						b.Fatalf("status %d err %v", resp.StatusCode, err)
					}
					return len(body)
				}
				respBytes := post()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					post()
				}
				b.ReportMetric(float64(len(mode.body)), "req-B")
				b.ReportMetric(float64(respBytes), "resp-B")
			})
		}
		srv.Close()
	}
}

// BenchmarkWALReplay measures warm-restart cost: rebuilding a 10k-class
// store by replaying its write-ahead log (store.Recover) versus
// re-classifying the same 10k functions from scratch through the
// certified Add path. Log records carry the class key each insert was
// certified under, so replay of a same-configuration log skips signature
// hashing and matcher certification entirely — it is pure chain
// publication — which is why recovery is expected to run at least 5x
// faster than re-classification (in practice closer to two orders of
// magnitude at n=7).
func BenchmarkWALReplay(b *testing.B) {
	n := 7
	fs := gen.UniformRandom(n, 10000, 77)

	dir := b.TempDir()
	st, w, err := store.Recover(dir, n, store.Options{}, wal.Options{FsyncEvery: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range fs {
		st.Add(f)
	}
	classes := st.Size()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, w, err := store.Recover(dir, n, store.Options{}, wal.Options{FsyncEvery: time.Second})
			if err != nil {
				b.Fatal(err)
			}
			if r.Size() != classes {
				b.Fatalf("recovered %d classes, want %d", r.Size(), classes)
			}
			w.Close()
		}
	})
	b.Run("reclassify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := store.New(n, store.Options{})
			for _, f := range fs {
				fresh.Add(f)
			}
			if fresh.Size() != classes {
				b.Fatalf("classified %d classes, want %d", fresh.Size(), classes)
			}
		}
	})
}

// BenchmarkStoreThroughput compares the online class store against the
// offline core.ClassifyParallel on the 6-variable circuit workload. The
// batch pipeline reuses ClassifyParallel's chunking, so the comparison
// isolates the serving overheads: engine pooling, shard locking and (in
// the insert/classify cases) matcher certification of every hit;
// "service-cached" is the steady-state serving mode where repeated
// functions are answered from the LRU.
func BenchmarkStoreThroughput(b *testing.B) {
	fs := circuitWorkload(6)
	cfg := core.ConfigAll()
	cfg.FastOSDV = true

	b.Run("classify-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ClassifyParallel(6, cfg, fs, 0)
		}
	})
	b.Run("store-insert", func(b *testing.B) {
		// Cold build: the whole class store constructed from the batch.
		for i := 0; i < b.N; i++ {
			svc := service.New(store.New(6, store.Options{}), service.Options{CacheSize: -1})
			svc.Insert(fs)
		}
	})
	b.Run("service-classify", func(b *testing.B) {
		// Warm store, no cache: every answer re-certified by the matcher.
		svc := service.New(store.New(6, store.Options{}), service.Options{CacheSize: -1})
		svc.Insert(fs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Classify(fs)
		}
	})
	b.Run("service-cached", func(b *testing.B) {
		// Steady state: warm store and warm LRU.
		svc := service.New(store.New(6, store.Options{}), service.Options{CacheSize: len(fs) * 2})
		svc.Insert(fs)
		svc.Classify(fs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Classify(fs)
		}
	})
}
